package static

import (
	"strings"
	"testing"

	"spm/internal/flowchart"
	"spm/internal/lattice"
)

func military(t *testing.T) *lattice.Lattice {
	t.Helper()
	l, err := lattice.Chain("U", "C", "S", "TS")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLatticeCertifyChain(t *testing.T) {
	l := military(t)
	q := flowchart.MustParse(`
program mix
inputs pub conf sec
    y := pub + conf
    halt
`)
	classOf := map[string]lattice.Class{
		"pub":  l.MustClass("U"),
		"conf": l.MustClass("C"),
		"sec":  l.MustClass("S"),
	}
	// Output class is U ⊔ C = C.
	rep, err := CertifyLattice(q, l, classOf, l.MustClass("C"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.OutputClass != "C" {
		t.Errorf("clearance C: %s", rep)
	}
	// A U-cleared user must be refused.
	rep, err = CertifyLattice(q, l, classOf, l.MustClass("U"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Errorf("clearance U should fail: %s", rep)
	}
	if !strings.Contains(rep.String(), "NOT certifiable") {
		t.Errorf("report: %s", rep)
	}
	// TS clearance dominates everything.
	rep, err = CertifyLattice(q, l, classOf, l.MustClass("TS"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("clearance TS: %s", rep)
	}
}

func TestLatticeCertifyImplicitFlow(t *testing.T) {
	l := military(t)
	// y is assigned under a branch on secret data: implicit flow raises
	// the output to S even though only constants are assigned.
	q := flowchart.MustParse(`
program implicit
inputs sec
    if sec == 0 goto A else B
A:  y := 1
    goto J
B:  y := 2
    goto J
J:  halt
`)
	classOf := map[string]lattice.Class{"sec": l.MustClass("S")}
	rep, err := CertifyLattice(q, l, classOf, l.MustClass("C"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.OutputClass != "S" {
		t.Errorf("implicit flow missed: %s", rep)
	}
}

func TestLatticeCertifyForgetting(t *testing.T) {
	l := military(t)
	q := flowchart.MustParse(`
program forget
inputs sec pub
    r := sec
    r := 0
    y := r + pub
    halt
`)
	classOf := map[string]lattice.Class{"sec": l.MustClass("S"), "pub": l.MustClass("U")}
	rep, err := CertifyLattice(q, l, classOf, l.MustClass("U"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("overwritten class should recede statically: %s", rep)
	}
}

func TestLatticeCertifyIncomparableCompartments(t *testing.T) {
	// Diamond: crypto and nuclear are incomparable; their join is top.
	l, err := lattice.NewLattice(
		[]string{"pub", "crypto", "nuclear", "both"},
		[][2]string{{"pub", "crypto"}, {"pub", "nuclear"}, {"crypto", "both"}, {"nuclear", "both"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	q := flowchart.MustParse(`
program compartments
inputs c n
    y := c + n
    halt
`)
	classOf := map[string]lattice.Class{"c": l.MustClass("crypto"), "n": l.MustClass("nuclear")}
	// Neither single compartment suffices.
	for _, clr := range []string{"crypto", "nuclear"} {
		rep, err := CertifyLattice(q, l, classOf, l.MustClass(clr))
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK {
			t.Errorf("clearance %s should fail: %s", clr, rep)
		}
	}
	rep, err := CertifyLattice(q, l, classOf, l.MustClass("both"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.OutputClass != "both" {
		t.Errorf("clearance both: %s", rep)
	}
}

func TestLatticeCertifyTwoPointMatchesAllow(t *testing.T) {
	// On the two-point lattice with disallowed inputs priv, lattice
	// certification agrees with Certify's allow(J) verdict on the
	// Example 9 program.
	l := lattice.TwoPoint("null", "priv")
	q := flowchart.MustParse(progEx9)
	classOf := map[string]lattice.Class{
		"x1": l.MustClass("null"),
		"x2": l.MustClass("priv"),
	}
	rep, err := CertifyLattice(q, l, classOf, l.MustClass("null"))
	if err != nil {
		t.Fatal(err)
	}
	allowRep, err := Certify(q, lattice.NewIndexSet(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != allowRep.OK {
		t.Errorf("two-point lattice disagrees with allow(1): %v vs %v", rep.OK, allowRep.OK)
	}
}

func TestLatticeCertifyLoop(t *testing.T) {
	l := military(t)
	q := flowchart.MustParse(`
program loop
inputs sec pub
    r := sec
Loop: if r > 0 goto Body else Done
Body: r := r - 1
      s := s + pub
      goto Loop
Done: y := s
      halt
`)
	classOf := map[string]lattice.Class{"sec": l.MustClass("S"), "pub": l.MustClass("U")}
	// s absorbs the loop's implicit S class.
	rep, err := CertifyLattice(q, l, classOf, l.MustClass("C"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.OutputClass != "S" {
		t.Errorf("loop-carried class wrong: %s", rep)
	}
	rep, err = CertifyLattice(q, l, classOf, l.MustClass("S"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("clearance S should pass: %s", rep)
	}
}

func TestLatticeCertifyBadClass(t *testing.T) {
	l := military(t)
	q := flowchart.MustParse("inputs x\n y := x\n halt\n")
	if _, err := CertifyLattice(q, l, map[string]lattice.Class{"x": lattice.Class(99)}, l.Bottom()); err == nil {
		t.Error("invalid class accepted")
	}
	bad := &flowchart.Program{Name: "bad"}
	if _, err := CertifyLattice(bad, l, nil, l.Bottom()); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestLatticeCertifyUnassignedDefaultsBottom(t *testing.T) {
	l := military(t)
	q := flowchart.MustParse("inputs a b\n y := a + b\n halt\n")
	// Only a is classified; b defaults to U (bottom).
	rep, err := CertifyLattice(q, l, map[string]lattice.Class{"a": l.MustClass("C")}, l.MustClass("C"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.OutputClass != "C" {
		t.Errorf("default-bottom handling: %s", rep)
	}
}
