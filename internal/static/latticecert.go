package static

import (
	"fmt"
	"sort"
	"strings"

	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/transform"
)

// LatticeReport is the result of certification against an arbitrary finite
// security-class lattice (Denning's model, the paper's reference [2]),
// generalising the allow(J) certification: instead of sets of input
// indices, variables carry classes from any lattice — two-point null/priv
// (Fenton), military chains, or incomparable compartments — and the
// program is certified against a clearance class.
type LatticeReport struct {
	Program   string
	Clearance string
	OK        bool
	// OutputClass is the join of the output's classes over all halts,
	// including program-counter classes.
	OutputClass string
	// VarClasses maps each variable to its final class name.
	VarClasses map[string]string
	// Violations names the halts whose release exceeds the clearance.
	Violations []flowchart.NodeID
}

// String summarises the report.
func (r LatticeReport) String() string {
	if r.OK {
		return fmt.Sprintf("program %q certified for clearance %s: output class %s",
			r.Program, r.Clearance, r.OutputClass)
	}
	ids := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		ids[i] = fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("program %q NOT certifiable for clearance %s: output class %s exceeds it (halts %s)",
		r.Program, r.Clearance, r.OutputClass, strings.Join(ids, ","))
}

// CertifyLattice runs the information-flow certification of q over an
// arbitrary class lattice. classOf assigns initial classes to variables
// (typically the inputs); unassigned variables start at the lattice
// bottom. The program is certified when every normal halt releases an
// output whose class (joined with the program-counter class at the halt)
// can flow to clearance.
func CertifyLattice(q *flowchart.Program, l *lattice.Lattice, classOf map[string]lattice.Class, clearance lattice.Class) (LatticeReport, error) {
	rep := LatticeReport{Program: q.Name, Clearance: l.Name(clearance), VarClasses: make(map[string]string)}
	g, err := transform.Analyze(q)
	if err != nil {
		return rep, err
	}
	for v, c := range classOf {
		if int(c) < 0 || int(c) >= l.Size() {
			return rep, fmt.Errorf("static: variable %q assigned invalid class %d", v, int(c))
		}
	}

	memberOf := make([][]flowchart.NodeID, len(q.Nodes))
	for _, d := range g.Decisions() {
		region, err := g.Region(d)
		if err != nil {
			return rep, err
		}
		for _, n := range region {
			memberOf[n] = append(memberOf[n], d)
		}
	}

	bot := l.Bottom()
	in := make([]map[string]lattice.Class, len(q.Nodes))
	for i := range in {
		in[i] = make(map[string]lattice.Class)
	}
	for v, c := range classOf {
		in[q.Start][v] = c
	}

	classAt := func(env map[string]lattice.Class, v string) lattice.Class {
		if c, ok := env[v]; ok {
			return c
		}
		return bot
	}
	exprClass := func(env map[string]lattice.Class, node interface{ AddVars(map[string]bool) }) lattice.Class {
		cls := bot
		for _, v := range flowchart.Vars(node) {
			cls = l.Join(cls, classAt(env, v))
		}
		return cls
	}
	pcClass := func(n flowchart.NodeID) lattice.Class {
		cls := bot
		for _, d := range memberOf[n] {
			cls = l.Join(cls, exprClass(in[d], q.Nodes[d].Cond))
		}
		return cls
	}
	joinInto := func(dst flowchart.NodeID, src map[string]lattice.Class) bool {
		changed := false
		tgt := in[dst]
		for v, c := range src {
			merged := l.Join(classAt(tgt, v), c)
			if merged != classAt(tgt, v) {
				tgt[v] = merged
				changed = true
			}
		}
		return changed
	}

	work := []flowchart.NodeID{q.Start}
	queued := make([]bool, len(q.Nodes))
	queued[q.Start] = true
	push := func(id flowchart.NodeID) {
		if !queued[id] {
			queued[id] = true
			work = append(work, id)
		}
	}
	succEdges := func(n *flowchart.Node) []flowchart.NodeID {
		if n.Kind == flowchart.KindDecision {
			if bc, ok := n.Cond.(flowchart.BoolConst); ok {
				if bool(bc) {
					return []flowchart.NodeID{n.True}
				}
				return []flowchart.NodeID{n.False}
			}
		}
		return n.Succs()
	}
	for iter := 0; len(work) > 0; iter++ {
		if iter > 1_000_000 {
			return rep, fmt.Errorf("static: lattice fixpoint did not converge (program %q)", q.Name)
		}
		id := work[len(work)-1]
		work = work[:len(work)-1]
		queued[id] = false
		n := &q.Nodes[id]
		var out map[string]lattice.Class
		switch n.Kind {
		case flowchart.KindAssign:
			out = make(map[string]lattice.Class, len(in[id])+1)
			for v, c := range in[id] {
				out[v] = c
			}
			out[n.Target] = l.Join(exprClass(in[id], n.Expr), pcClass(id))
		default:
			out = in[id]
		}
		for _, s := range succEdges(n) {
			if joinInto(s, out) {
				push(s)
				if q.Nodes[s].Kind == flowchart.KindDecision {
					region, err := g.Region(s)
					if err != nil {
						return rep, err
					}
					for _, m := range region {
						push(m)
					}
				}
			}
		}
	}

	outVar := q.OutputVar()
	outClass := bot
	for i := range q.Nodes {
		n := &q.Nodes[i]
		if n.Kind != flowchart.KindHalt || n.Violation || !g.Reachable[i] {
			continue
		}
		id := flowchart.NodeID(i)
		cls := l.Join(classAt(in[id], outVar), pcClass(id))
		outClass = l.Join(outClass, cls)
		for v, c := range in[id] {
			prev, ok := rep.VarClasses[v]
			if !ok {
				rep.VarClasses[v] = l.Name(c)
				continue
			}
			// Join with the previously recorded class name.
			pc, _ := l.Class(prev)
			rep.VarClasses[v] = l.Name(l.Join(pc, c))
		}
		if !l.CanFlow(cls, clearance) {
			rep.Violations = append(rep.Violations, id)
		}
	}
	sort.Slice(rep.Violations, func(a, b int) bool { return rep.Violations[a] < rep.Violations[b] })
	rep.OutputClass = l.Name(outClass)
	rep.OK = len(rep.Violations) == 0
	return rep, nil
}
