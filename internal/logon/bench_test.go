package logon

import (
	"testing"

	"spm/internal/paging"
)

func BenchmarkCheck(b *testing.B) {
	mem := paging.MustNew(64, 16)
	c, err := NewChecker(mem, []byte("hfcb"), 0)
	if err != nil {
		b.Fatal(err)
	}
	guess := []byte("hfca")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem.EvictAll()
		if _, err := c.Check(guess, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageBoundaryAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mem := paging.MustNew(64, 16)
		c, err := NewChecker(mem, []byte("hfcb"), 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := PageBoundaryAttack(c, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaptiveExtract(b *testing.B) {
	q := Program()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(q, 0, 73, 9); err != nil {
			b.Fatal(err)
		}
	}
}
