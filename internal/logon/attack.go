package logon

import (
	"fmt"

	"spm/internal/paging"
)

// Checker is the victim: a password check whose guess buffer lives in
// paged memory. It reads the guess character by character through the
// memory (faulting pages in) and compares against the stored password,
// returning at the first mismatch — the early exit that, combined with
// observable page movement, gives the attack its foothold.
type Checker struct {
	Mem      *paging.Memory
	Stored   []byte
	GuessAt  int // base address of the guess buffer
	Attempts int // number of Check invocations (the work-factor counter)
}

// NewChecker builds a checker for the given stored password. The memory
// must be large enough for the guess buffer placements the attack uses
// (two pages suffice).
func NewChecker(mem *paging.Memory, stored []byte, guessAt int) (*Checker, error) {
	if len(stored) == 0 {
		return nil, fmt.Errorf("logon: empty stored password")
	}
	if guessAt < 0 {
		return nil, fmt.Errorf("logon: negative guess address")
	}
	return &Checker{Mem: mem, Stored: stored, GuessAt: guessAt}, nil
}

// Check reads the guess from memory and compares it with the stored
// password, early-exiting on the first mismatch. Only the characters the
// comparison actually needs are read — which is what leaks.
func (c *Checker) Check(guess []byte, at int) (bool, error) {
	c.Attempts++
	if len(guess) != len(c.Stored) {
		return false, nil
	}
	if err := c.Mem.WriteString(at, guess); err != nil {
		return false, err
	}
	for i := range c.Stored {
		b, err := c.Mem.Read(at + i)
		if err != nil {
			return false, err
		}
		if b != c.Stored[i] {
			return false, nil
		}
	}
	return true, nil
}

// PageBoundaryAttack recovers the stored password using the fault trace:
// for each position j, the guess buffer is placed so that characters
// 0..j sit at the end of one page and character j+1 begins the next page.
// After evicting everything, a check that faults the second page must
// have compared — and matched — every character on the first page. Each
// position costs at most n probes, so the total is at most n·k + k.
//
// It returns the recovered password and the total number of check
// invocations (the reduced work factor).
func PageBoundaryAttack(c *Checker, n int) (WorkFactor, error) {
	k := len(c.Stored)
	wf := WorkFactor{Alphabet: n, Length: k}
	ps := c.Mem.PageSize()
	if c.Mem.Pages() < 2 {
		return wf, fmt.Errorf("logon: attack needs at least two pages")
	}
	known := make([]byte, 0, k)
	pad := byte('a') // arbitrary filler for positions not yet probed

	for j := 0; j < k; j++ {
		if j == k-1 {
			// The last character has no page to its right; finish with a
			// straight scan using full checks (at most n probes).
			found := false
			guess := make([]byte, k)
			copy(guess, known)
			for ci := 0; ci < n; ci++ {
				guess[k-1] = alphabetChar(ci)
				c.Mem.EvictAll()
				ok, err := c.Check(guess, 0)
				if err != nil {
					return wf, err
				}
				if ok {
					known = append(known, alphabetChar(ci))
					found = true
					break
				}
			}
			if !found {
				wf.Guesses = c.Attempts
				return wf, fmt.Errorf("logon: position %d not recovered", j)
			}
			continue
		}
		// Place the guess so the page boundary falls between j and j+1:
		// guess starts at boundary - (j+1).
		at := ps - (j + 1)
		secondPage := c.Mem.PageOf(at + j + 1)
		found := false
		for ci := 0; ci < n; ci++ {
			guess := make([]byte, k)
			copy(guess, known)
			guess[j] = alphabetChar(ci)
			for t := j + 1; t < k; t++ {
				guess[t] = pad
			}
			c.Mem.EvictAll()
			if _, err := c.Check(guess, at); err != nil {
				return wf, err
			}
			if c.Mem.Faulted(secondPage) {
				// The comparison crossed the boundary: characters 0..j
				// all matched.
				known = append(known, alphabetChar(ci))
				found = true
				break
			}
		}
		if !found {
			wf.Guesses = c.Attempts
			return wf, fmt.Errorf("logon: position %d not recovered", j)
		}
	}
	wf.Guesses = c.Attempts
	wf.Found = true
	wf.Recovered = known
	return wf, nil
}

// BruteForceAgainst runs the brute-force baseline against the same
// checker, for an apples-to-apples work-factor comparison.
func BruteForceAgainst(c *Checker, n int) (WorkFactor, error) {
	k := len(c.Stored)
	var runErr error
	wf := BruteForce(n, k, func(guess []byte) bool {
		c.Mem.EvictAll()
		ok, err := c.Check(guess, 0)
		if err != nil && runErr == nil {
			runErr = err
		}
		return ok
	})
	wf.Guesses = c.Attempts
	return wf, runErr
}
