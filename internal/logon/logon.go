// Package logon implements Example 5 of Jones & Lipton — the logon
// program Q(userid, table, password) — together with the Section 2
// password-guessing work-factor study: brute force needs on the order of
// n^k attempts against a k-character password over an n-character
// alphabet, but observing page movement during the check reduces the work
// to n·k (the classic attack the paper recounts).
package logon

import (
	"fmt"

	"spm/internal/core"
)

// TableUsers is the number of users in the toy password table. The table
// is encoded as a single integer input so the logon program fits the
// model's Z^k → E shape: user u's one-digit password is the u-th decimal
// digit.
const TableUsers = 2

// tableDigit extracts user u's password digit from the encoded table.
func tableDigit(table int64, u int64) int64 {
	if table < 0 {
		table = -table
	}
	d := table
	for i := int64(0); i < u; i++ {
		d /= 10
	}
	return d % 10
}

// Program returns the logon program Q : userid × table × password →
// {true=1, false=0} as a mechanism (Example 3: a program is its own —
// here unsound — protection mechanism).
func Program() core.Mechanism {
	return core.NewFunc("logon", 3, func(in []int64) core.Outcome {
		u, table, p := in[0], in[1], in[2]
		if u < 0 || u >= TableUsers {
			return core.Outcome{Value: 0, Steps: 1}
		}
		if tableDigit(table, u) == p {
			return core.Outcome{Value: 1, Steps: 1}
		}
		return core.Outcome{Value: 0, Steps: 1}
	})
}

// Policy returns allow(1,3): the user may know the userid and the
// password they typed, but nothing from the password table.
func Policy() core.Policy {
	return core.NewAllow(3, 1, 3)
}

// Domain returns an exhaustive test domain: both userids, all two-digit
// tables over digits 0..maxDigit, and passwords 0..maxDigit.
func Domain(maxDigit int64) core.Domain {
	users := []int64{0, 1}
	var tables []int64
	for d0 := int64(0); d0 <= maxDigit; d0++ {
		for d1 := int64(0); d1 <= maxDigit; d1++ {
			tables = append(tables, d0+10*d1)
		}
	}
	pws := make([]int64, 0, maxDigit+1)
	for p := int64(0); p <= maxDigit; p++ {
		pws = append(pws, p)
	}
	return core.Domain{users, tables, pws}
}

// WorkFactor summarises a guessing campaign.
type WorkFactor struct {
	Alphabet int // n
	Length   int // k
	// Guesses is the number of password-check invocations performed.
	Guesses int
	// Found reports whether the password was recovered.
	Found bool
	// Recovered is the recovered password.
	Recovered []byte
}

// String renders the work factor for experiment tables.
func (w WorkFactor) String() string {
	return fmt.Sprintf("n=%d k=%d guesses=%d found=%v", w.Alphabet, w.Length, w.Guesses, w.Found)
}

// BruteForce attempts every password in lexicographic order against check
// until it accepts, returning the guess count. check is the system's
// password test (guess → accepted).
func BruteForce(n, k int, check func(guess []byte) bool) WorkFactor {
	wf := WorkFactor{Alphabet: n, Length: k}
	guess := make([]byte, k)
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == k {
			wf.Guesses++
			if check(guess) {
				wf.Recovered = append([]byte(nil), guess...)
				return true
			}
			return false
		}
		for c := 0; c < n; c++ {
			guess[pos] = alphabetChar(c)
			if rec(pos + 1) {
				return true
			}
		}
		return false
	}
	wf.Found = rec(0)
	return wf
}

// alphabetChar maps 0..n-1 to printable characters.
func alphabetChar(c int) byte { return byte('a' + c) }
