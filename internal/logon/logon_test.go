package logon

import (
	"strings"
	"testing"

	"spm/internal/core"
	"spm/internal/paging"
)

func TestLogonProgram(t *testing.T) {
	q := Program()
	// Table 73: user 0's password is 3, user 1's is 7.
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{0, 73, 3}, 1},
		{[]int64{0, 73, 7}, 0},
		{[]int64{1, 73, 7}, 1},
		{[]int64{1, 73, 3}, 0},
		{[]int64{5, 73, 3}, 0}, // unknown user
	}
	for _, tc := range cases {
		o, err := q.Run(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if o.Value != tc.want {
			t.Errorf("Q%v = %d, want %d", tc.in, o.Value, tc.want)
		}
	}
}

func TestLogonUnsoundButSmallLeak(t *testing.T) {
	// Example 5: Q as its own mechanism is unsound for allow(1,3)...
	q := Program()
	pol := Policy()
	dom := Domain(3)
	rep, err := core.CheckSoundness(q, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Error("logon must be unsound for allow(1,3)")
	}
	// ...but workable in practice because the leak is small: exactly one
	// bit per query.
	leak, err := core.MeasureLeak(q, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if leak.MaxOutcomes != 2 || leak.Bits != 1 {
		t.Errorf("leak = %+v, want exactly 1 bit", leak)
	}
}

func TestBruteForceWorkFactor(t *testing.T) {
	stored := []byte("cab") // n=3, k=3
	wf := BruteForce(3, 3, func(g []byte) bool { return string(g) == string(stored) })
	if !wf.Found || string(wf.Recovered) != "cab" {
		t.Fatalf("brute force failed: %+v", wf)
	}
	// Lexicographic enumeration: "cab" is candidate 2·9 + 0·3 + 1 = 19
	// zero-based, so the 20th guess.
	if wf.Guesses != 20 {
		t.Errorf("guesses = %d, want 20", wf.Guesses)
	}
	// Worst case is n^k.
	worst := BruteForce(3, 3, func(g []byte) bool { return string(g) == "ccc" })
	if worst.Guesses != 27 {
		t.Errorf("worst case = %d, want 27", worst.Guesses)
	}
}

func TestCheckerEarlyExit(t *testing.T) {
	mem := paging.MustNew(64, 16)
	c, err := NewChecker(mem, []byte("abcd"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Place the guess across the boundary after position 1 (addr 14..17):
	// a first-character mismatch must not touch page 1.
	mem.EvictAll()
	ok, err := c.Check([]byte("zaaa"), 14)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("wrong guess accepted")
	}
	if mem.Faulted(1) {
		t.Error("early exit must not fault the second page")
	}
	// A correct prefix crossing the boundary does fault page 1.
	mem.EvictAll()
	if _, err := c.Check([]byte("abzz"), 14); err != nil {
		t.Fatal(err)
	}
	if !mem.Faulted(1) {
		t.Error("matching prefix must fault the second page")
	}
}

func TestCheckerLengthMismatch(t *testing.T) {
	mem := paging.MustNew(64, 16)
	c, err := NewChecker(mem, []byte("abc"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Check([]byte("ab"), 0)
	if err != nil || ok {
		t.Errorf("length mismatch: ok=%v err=%v", ok, err)
	}
}

func TestNewCheckerValidation(t *testing.T) {
	mem := paging.MustNew(64, 16)
	if _, err := NewChecker(mem, nil, 0); err == nil {
		t.Error("empty password accepted")
	}
	if _, err := NewChecker(mem, []byte("x"), -1); err == nil {
		t.Error("negative address accepted")
	}
}

func TestPageBoundaryAttack(t *testing.T) {
	for _, tc := range []struct {
		n      int
		stored string
	}{
		{4, "cab"},
		{6, "fade"},
		{3, "a"},
		{5, "edcba"},
	} {
		mem := paging.MustNew(64, 16)
		c, err := NewChecker(mem, []byte(tc.stored), 0)
		if err != nil {
			t.Fatal(err)
		}
		wf, err := PageBoundaryAttack(c, tc.n)
		if err != nil {
			t.Fatalf("attack(%q): %v", tc.stored, err)
		}
		if !wf.Found || string(wf.Recovered) != tc.stored {
			t.Errorf("attack(%q) recovered %q", tc.stored, wf.Recovered)
		}
		k := len(tc.stored)
		if wf.Guesses > tc.n*k {
			t.Errorf("attack(%q) used %d guesses, want ≤ n·k = %d", tc.stored, wf.Guesses, tc.n*k)
		}
	}
}

func TestAttackBeatsBruteForce(t *testing.T) {
	const n, stored = 6, "fcbda"
	memA := paging.MustNew(64, 16)
	cA, err := NewChecker(memA, []byte(stored), 0)
	if err != nil {
		t.Fatal(err)
	}
	attack, err := PageBoundaryAttack(cA, n)
	if err != nil {
		t.Fatal(err)
	}
	memB := paging.MustNew(64, 16)
	cB, err := NewChecker(memB, []byte(stored), 0)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := BruteForceAgainst(cB, n)
	if err != nil {
		t.Fatal(err)
	}
	if !brute.Found || string(brute.Recovered) != stored {
		t.Fatalf("brute force failed: %+v", brute)
	}
	if attack.Guesses*10 > brute.Guesses {
		t.Errorf("attack %d vs brute %d: want at least 10x reduction here",
			attack.Guesses, brute.Guesses)
	}
}

func TestAttackFailsWhenCharOutsideAlphabet(t *testing.T) {
	mem := paging.MustNew(64, 16)
	c, err := NewChecker(mem, []byte("z"), 0) // 'z' not within n=3 alphabet
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PageBoundaryAttack(c, 3); err == nil {
		t.Error("attack should report failure when the alphabet is wrong")
	}
}

func TestAttackNeedsTwoPages(t *testing.T) {
	mem := paging.MustNew(16, 16)
	c, err := NewChecker(mem, []byte("ab"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PageBoundaryAttack(c, 3); err == nil {
		t.Error("single-page memory accepted")
	}
}

func TestWorkFactorString(t *testing.T) {
	wf := WorkFactor{Alphabet: 4, Length: 3, Guesses: 10, Found: true}
	s := wf.String()
	if !strings.Contains(s, "n=4") || !strings.Contains(s, "guesses=10") {
		t.Errorf("String = %q", s)
	}
}
