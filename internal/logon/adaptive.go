package logon

import (
	"fmt"

	"spm/internal/core"
)

// AdaptiveExtraction quantifies Example 5's observation from the other
// side: the logon program's one-bit-per-query leak is "small", but an
// attacker who may query adaptively accumulates it into full disclosure.
// Extract recovers user u's password digit from the logon mechanism alone,
// counting queries; the worst case is maxDigit+1 queries (try every
// digit), i.e. the work factor n of a one-character password — the k = 1
// base case of the Section 2 work-factor discussion.
type AdaptiveExtraction struct {
	// Queries is the number of logon invocations used.
	Queries int
	// Digit is the recovered password digit, or -1 on failure.
	Digit int64
}

// Extract recovers user u's digit from table via the mechanism q (which
// must behave like Program()): it tries candidate passwords 0..maxDigit
// in order.
func Extract(q core.Mechanism, u, table, maxDigit int64) (AdaptiveExtraction, error) {
	res := AdaptiveExtraction{Digit: -1}
	for p := int64(0); p <= maxDigit; p++ {
		o, err := q.Run([]int64{u, table, p})
		if err != nil {
			return res, err
		}
		res.Queries++
		if o.Violation {
			return res, fmt.Errorf("logon: mechanism refused the query — nothing to extract")
		}
		if o.Value == 1 {
			res.Digit = p
			return res, nil
		}
	}
	return res, nil
}

// ExpectedQueries returns the mean number of queries Extract needs over
// uniformly random digits 0..maxDigit: (n+1)/2 for n = maxDigit+1
// candidates, since the hit ends the scan.
func ExpectedQueries(maxDigit int64) float64 {
	n := float64(maxDigit + 1)
	return (n + 1) / 2
}
