package logon

import (
	"testing"

	"spm/internal/core"
)

func TestAdaptiveExtraction(t *testing.T) {
	q := Program()
	// Table 73: user 0's digit is 3, user 1's is 7.
	res, err := Extract(q, 0, 73, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digit != 3 {
		t.Errorf("extracted %d, want 3", res.Digit)
	}
	if res.Queries != 4 { // tries 0,1,2,3
		t.Errorf("queries = %d, want 4", res.Queries)
	}
	res, err = Extract(q, 1, 73, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digit != 7 || res.Queries != 8 {
		t.Errorf("user 1: %+v", res)
	}
}

func TestAdaptiveExtractionWorstCase(t *testing.T) {
	q := Program()
	// Digit 9 forces the full scan of n = 10 candidates.
	res, err := Extract(q, 0, 9, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digit != 9 || res.Queries != 10 {
		t.Errorf("worst case: %+v", res)
	}
}

func TestAdaptiveExtractionAverage(t *testing.T) {
	q := Program()
	const maxDigit = 9
	total := 0
	for d := int64(0); d <= maxDigit; d++ {
		res, err := Extract(q, 0, d, maxDigit) // table = d: user 0's digit is d
		if err != nil {
			t.Fatal(err)
		}
		if res.Digit != d {
			t.Fatalf("digit %d extracted as %d", d, res.Digit)
		}
		total += res.Queries
	}
	mean := float64(total) / float64(maxDigit+1)
	want := ExpectedQueries(maxDigit)
	if mean != want {
		t.Errorf("mean queries = %v, want %v", mean, want)
	}
}

func TestExtractAgainstNullMechanismFails(t *testing.T) {
	// A sound mechanism (the null one) yields nothing to extract: the
	// adaptive attack is exactly what soundness forecloses.
	null := core.NewNull(3)
	if _, err := Extract(null, 0, 73, 9); err == nil {
		t.Error("extraction against the null mechanism should fail")
	}
}

func TestExtractMissingDigitUnrecovered(t *testing.T) {
	q := Program()
	// Restrict the candidate range below the true digit: not found.
	res, err := Extract(q, 1, 73, 5) // digit is 7, we only try 0..5
	if err != nil {
		t.Fatal(err)
	}
	if res.Digit != -1 || res.Queries != 6 {
		t.Errorf("restricted scan: %+v", res)
	}
}
