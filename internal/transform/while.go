package transform

import (
	"fmt"

	"spm/internal/core"
	"spm/internal/flowchart"
)

// Loop describes a while occurrence: a decision box one of whose arms is a
// straight-line chain of assignment boxes leading back to the decision,
// the other arm being the loop exit.
type Loop struct {
	Decision flowchart.NodeID
	// Body is the chain of assignment boxes executed when the loop
	// continues.
	Body []flowchart.NodeID
	// Exit is the node control reaches when the loop ends.
	Exit flowchart.NodeID
	// BodyOnTrue reports whether the body is the decision's true arm.
	BodyOnTrue bool
}

// FindLoops returns the while occurrences of p in decision-ID order.
func FindLoops(p *flowchart.Program) ([]Loop, error) {
	g, err := Analyze(p)
	if err != nil {
		return nil, err
	}
	var out []Loop
	for _, d := range g.Decisions() {
		n := &p.Nodes[d]
		if arm, end, ok := linearArm(p, g, n.True); ok && end == d {
			out = append(out, Loop{Decision: d, Body: arm, Exit: n.False, BodyOnTrue: true})
			continue
		}
		if arm, end, ok := linearArm(p, g, n.False); ok && end == d {
			out = append(out, Loop{Decision: d, Body: arm, Exit: n.True, BodyOnTrue: false})
		}
	}
	return out, nil
}

// Unroll applies the while transform of Section 4 to the loop l, replacing
// it by maxIter unconditional, guarded copies of the body:
//
//	t := ite(B, 1, 0); v := ite(t == 1, E, v); ...   (maxIter times)
//
// Once the guard evaluates false the remaining copies are identity
// assignments, so the result is functionally equivalent to the loop
// *provided* the loop never runs more than maxIter iterations on the
// inputs of interest — the caller's obligation, checkable with Equivalent.
// The transformed program has no backward edge and no data-dependent
// branch, so surveillance on it never taints the program counter with the
// loop test's classes.
func Unroll(p *flowchart.Program, l Loop, maxIter int) (*flowchart.Program, error) {
	if maxIter < 1 {
		return nil, fmt.Errorf("transform: maxIter %d < 1", maxIter)
	}
	q := p.Clone()
	q.Name += "_unrolled"
	dec := &q.Nodes[l.Decision]
	if dec.Kind != flowchart.KindDecision {
		return nil, fmt.Errorf("transform: node %d is %s, not a decision", l.Decision, dec.Kind)
	}
	cond := dec.Cond
	if !l.BodyOnTrue {
		cond = &flowchart.Not{X: cond}
	}

	// The decision node becomes the first iteration's guard assignment,
	// keeping edges into the loop valid.
	tmp := freshVar(q, "t_while")
	*dec = flowchart.Node{
		Kind:   flowchart.KindAssign,
		Target: tmp,
		Expr:   flowchart.Ite(cond, flowchart.C(1), flowchart.C(0)),
		Next:   flowchart.NoNode,
		Label:  dec.Label,
	}
	prev := l.Decision
	link := func(id flowchart.NodeID) {
		q.Nodes[prev].Next = id
		prev = id
	}
	emitBody := func() error {
		for _, id := range l.Body {
			a := &p.Nodes[id]
			if a.Kind != flowchart.KindAssign {
				return fmt.Errorf("transform: body node %d is %s, not an assignment", id, a.Kind)
			}
			guard := flowchart.Eq(flowchart.V(tmp), flowchart.C(1))
			link(q.AddNode(flowchart.Node{
				Kind:   flowchart.KindAssign,
				Target: a.Target,
				Expr:   flowchart.Ite(guard, a.Expr, flowchart.V(a.Target)),
				Next:   flowchart.NoNode,
			}))
		}
		return nil
	}
	if err := emitBody(); err != nil {
		return nil, err
	}
	for i := 1; i < maxIter; i++ {
		link(q.AddNode(flowchart.Node{
			Kind:   flowchart.KindAssign,
			Target: tmp,
			Expr:   flowchart.Ite(cond, flowchart.C(1), flowchart.C(0)),
			Next:   flowchart.NoNode,
		}))
		if err := emitBody(); err != nil {
			return nil, err
		}
	}
	q.Nodes[prev].Next = l.Exit
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("transform: result invalid: %w", err)
	}
	return q, nil
}

// Equivalent checks that two programs compute the same function (output
// value; running times may differ) over a finite domain. It returns a
// counterexample input when they disagree. Transforms are only useful when
// the transformed program is functionally equivalent — this is the check
// that discharges Unroll's iteration-bound obligation on a test domain.
func Equivalent(p, q *flowchart.Program, dom core.Domain) (ok bool, witness []int64, err error) {
	if p.Arity() != q.Arity() || len(dom) != p.Arity() {
		return false, nil, fmt.Errorf("transform: arity mismatch: %d vs %d vs domain %d",
			p.Arity(), q.Arity(), len(dom))
	}
	ok = true
	err = dom.Enumerate(func(in []int64) error {
		rp, err := p.Run(in)
		if err != nil {
			return err
		}
		rq, err := q.Run(in)
		if err != nil {
			return err
		}
		same := rp.Violation == rq.Violation && (rp.Violation || rp.Value == rq.Value)
		if !same && ok {
			ok = false
			witness = append([]int64(nil), in...)
		}
		return nil
	})
	return ok, witness, err
}
