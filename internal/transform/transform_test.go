package transform

import (
	"testing"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
)

// progEx7 is the paper's Example 7: the branch outcome is dead — y is 1 on
// both paths — so the if-then-else transform yields a maximal mechanism.
const progEx7 = `
program ex7
inputs x1 x2
    if x1 == 1 goto A else B
A:  r := 1
    goto J
B:  r := 2
    goto J
J:  y := 1
    halt
`

// progEx8 is the paper's Example 8: applying the transform makes the
// mechanism strictly less complete.
const progEx8 = `
program ex8
inputs x1 x2
    if x2 == 1 goto A else B
A:  y := 1
    goto J
B:  y := x1
    goto J
J:  halt
`

// progWhile runs a loop governed by x1 and then outputs x2.
const progWhile = `
program whileloop
inputs x1 x2
    r := x1
Loop: if r > 0 goto Body else Done
Body: r := r - 1
      goto Loop
Done: y := x2
      halt
`

func dom2() core.Domain { return core.Grid(2, 0, 1, 2) }

func TestAnalyzeBasics(t *testing.T) {
	p := flowchart.MustParse(progEx7)
	g, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Nodes {
		if !g.Reachable[i] {
			t.Errorf("node %d unreachable", i)
		}
	}
	ds := g.Decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %v", ds)
	}
	d := ds[0]
	n := &p.Nodes[d]
	// The join (y := 1) postdominates the decision and both arms.
	join := g.ImmediatePostDominator(d)
	if join == VirtualExit || p.Nodes[join].Kind != flowchart.KindAssign {
		t.Fatalf("ipdom of decision = %v", join)
	}
	if !g.PostDominates(join, d) || !g.PostDominates(join, n.True) || !g.PostDominates(join, n.False) {
		t.Error("join must postdominate the decision and both arms")
	}
	if g.PostDominates(n.True, d) {
		t.Error("an arm must not postdominate the decision")
	}
	// Region = the two arm assignments.
	region, err := g.Region(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(region) != 2 {
		t.Errorf("region = %v, want the two arm assignments", region)
	}
	for _, id := range region {
		if p.Nodes[id].Kind != flowchart.KindAssign {
			t.Errorf("region node %d is %s", id, p.Nodes[id].Kind)
		}
	}
}

func TestRegionOfHaltingArms(t *testing.T) {
	// When both arms halt separately the decision's region extends to the
	// halts and the ipdom is the virtual exit.
	p := flowchart.MustParse(`
inputs x1
    if x1 == 0 goto A else B
A:  y := 1
    halt
B:  y := 2
    halt
`)
	g, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Decisions()[0]
	if got := g.ImmediatePostDominator(d); got != VirtualExit {
		t.Errorf("ipdom = %v, want VirtualExit", got)
	}
	region, err := g.Region(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(region) != 4 {
		t.Errorf("region size = %d, want 4 (two assigns + two halts)", len(region))
	}
}

func TestRegionErrorsOnNonDecision(t *testing.T) {
	p := flowchart.MustParse("inputs x\n y := x\n halt\n")
	g, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Region(p.Start); err == nil {
		t.Error("Region on non-decision accepted")
	}
}

func TestLoopPostdominators(t *testing.T) {
	p := flowchart.MustParse(progWhile)
	g, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Decisions()[0]
	// The loop exit (y := x2) is the decision's immediate postdominator.
	join := g.ImmediatePostDominator(d)
	if join == VirtualExit {
		t.Fatal("loop decision should have a real ipdom (the exit)")
	}
	if n := &p.Nodes[join]; n.Kind != flowchart.KindAssign || n.Target != "y" {
		t.Errorf("ipdom is %s %q", n.Kind, n.Target)
	}
}

func TestFindDiamonds(t *testing.T) {
	p := flowchart.MustParse(progEx7)
	ds, err := FindDiamonds(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("diamonds = %+v", ds)
	}
	d := ds[0]
	if len(d.TrueArm) != 1 || len(d.FalseArm) != 1 {
		t.Errorf("arms = %v / %v", d.TrueArm, d.FalseArm)
	}
	// A loop is not a diamond.
	loopy := flowchart.MustParse(progWhile)
	ds, err = FindDiamonds(loopy)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("loop misdetected as diamond: %+v", ds)
	}
}

func TestExample7TransformMakesMaximal(t *testing.T) {
	q := flowchart.MustParse(progEx7)
	allow2 := lattice.NewIndexSet(2)

	// Plain surveillance: always Λ.
	ms := surveillance.MustMechanism(q, allow2, surveillance.Untimed)
	err := dom2().Enumerate(func(in []int64) error {
		o, err := ms.Run(in)
		if err != nil {
			return err
		}
		if !o.Violation {
			t.Errorf("M_s%v should be Λ before the transform", in)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Transform, then surveillance: always outputs 1 — maximal.
	qt, n, err := IfThenElseAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("applied %d transforms, want 1", n)
	}
	if ok, w, err := Equivalent(q, qt, dom2()); err != nil || !ok {
		t.Fatalf("transform not equivalent (witness %v, err %v)", w, err)
	}
	mt := surveillance.MustMechanism(qt, allow2, surveillance.Untimed)
	err = dom2().Enumerate(func(in []int64) error {
		o, err := mt.Run(in)
		if err != nil {
			return err
		}
		if o.Violation || o.Value != 1 {
			t.Errorf("transformed M%v = %v, want 1", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Soundness is preserved, and the transformed mechanism is strictly
	// more complete.
	pol := core.NewAllowSet(2, allow2)
	sr, err := core.CheckSoundness(mt, pol, dom2(), core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Sound {
		t.Errorf("transformed mechanism unsound: %s", sr)
	}
	rep, err := core.Compare(mt, ms, dom2())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Relation != core.MoreComplete {
		t.Errorf("transformed vs plain: %s, want more complete", rep)
	}
}

func TestExample8TransformHurts(t *testing.T) {
	q := flowchart.MustParse(progEx8)
	allow2 := lattice.NewIndexSet(2)
	ms := surveillance.MustMechanism(q, allow2, surveillance.Untimed)

	// Plain surveillance passes exactly when x2 == 1.
	err := dom2().Enumerate(func(in []int64) error {
		o, err := ms.Run(in)
		if err != nil {
			return err
		}
		if (in[1] == 1) == o.Violation {
			t.Errorf("M_s%v = %v", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	qt, _, err := IfThenElseAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if ok, w, err := Equivalent(q, qt, dom2()); err != nil || !ok {
		t.Fatalf("transform not equivalent (witness %v, err %v)", w, err)
	}
	mt := surveillance.MustMechanism(qt, allow2, surveillance.Untimed)
	// Transformed: always Λ (x1's class reaches y on every run).
	err = dom2().Enumerate(func(in []int64) error {
		o, err := mt.Run(in)
		if err != nil {
			return err
		}
		if !o.Violation {
			t.Errorf("transformed M%v = %v, want Λ", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Compare(ms, mt, dom2())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Relation != core.MoreComplete {
		t.Errorf("M vs transformed M': %s, want M more complete", rep)
	}
	// Both sound nonetheless.
	pol := core.NewAllowSet(2, allow2)
	for _, m := range []core.Mechanism{ms, mt} {
		sr, err := core.CheckSoundness(m, pol, dom2(), core.ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Sound {
			t.Errorf("%s unsound: %s", m.Name(), sr)
		}
	}
}

func TestFindLoops(t *testing.T) {
	p := flowchart.MustParse(progWhile)
	ls, err := FindLoops(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 {
		t.Fatalf("loops = %+v", ls)
	}
	l := ls[0]
	if !l.BodyOnTrue || len(l.Body) != 1 {
		t.Errorf("loop shape: %+v", l)
	}
	// A diamond is not a loop.
	ds, err := FindLoops(flowchart.MustParse(progEx7))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("diamond misdetected as loop: %+v", ds)
	}
}

func TestWhileUnrollTransform(t *testing.T) {
	q := flowchart.MustParse(progWhile)
	allow2 := lattice.NewIndexSet(2)

	// Plain surveillance: always Λ under allow(2) — the loop test taints
	// the program counter with x1's class.
	ms := surveillance.MustMechanism(q, allow2, surveillance.Untimed)
	err := dom2().Enumerate(func(in []int64) error {
		o, err := ms.Run(in)
		if err != nil {
			return err
		}
		if !o.Violation {
			t.Errorf("M_s%v = %v, want Λ", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ls, err := FindLoops(q)
	if err != nil {
		t.Fatal(err)
	}
	qt, err := Unroll(q, ls[0], 2) // domain values are ≤ 2
	if err != nil {
		t.Fatal(err)
	}
	if ok, w, err := Equivalent(q, qt, dom2()); err != nil || !ok {
		t.Fatalf("unroll not equivalent on domain (witness %v, err %v)", w, err)
	}
	// Unrolled: no branches at all — surveillance passes everywhere and
	// outputs x2, so the mechanism is maximal for this program.
	mt := surveillance.MustMechanism(qt, allow2, surveillance.Untimed)
	err = dom2().Enumerate(func(in []int64) error {
		o, err := mt.Run(in)
		if err != nil {
			return err
		}
		if o.Violation || o.Value != in[1] {
			t.Errorf("unrolled M%v = %v, want %d", in, o, in[1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := core.NewAllowSet(2, allow2)
	sr, err := core.CheckSoundness(mt, pol, dom2(), core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Sound {
		t.Errorf("unrolled mechanism unsound: %s", sr)
	}
}

// progDoubler computes y = 2*x1 with a loop, so an insufficient unroll
// bound is observable in the output.
const progDoubler = `
program doubler
inputs x1
    r := x1
Loop: if r > 0 goto Body else Done
Body: s := s + 2
      r := r - 1
      goto Loop
Done: y := s
      halt
`

func TestUnrollSufficientBound(t *testing.T) {
	q := flowchart.MustParse(progDoubler)
	ls, err := FindLoops(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 || len(ls[0].Body) != 2 {
		t.Fatalf("loops = %+v", ls)
	}
	dom := core.Grid(1, 0, 1, 2, 3)
	qt, err := Unroll(q, ls[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok, w, err := Equivalent(q, qt, dom); err != nil || !ok {
		t.Fatalf("unroll(3) should be equivalent on x1 ≤ 3 (witness %v, err %v)", w, err)
	}
	r, err := qt.Run([]int64{3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 6 {
		t.Errorf("unrolled doubler(3) = %v, want 6", r)
	}
}

func TestUnrollInsufficientBoundDetected(t *testing.T) {
	q := flowchart.MustParse(progDoubler)
	ls, _ := FindLoops(q)
	qt, err := Unroll(q, ls[0], 1) // too few iterations for x1 ≥ 2
	if err != nil {
		t.Fatal(err)
	}
	ok, w, err := Equivalent(q, qt, core.Grid(1, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Equivalent should detect the insufficient unroll bound")
	}
	if w == nil {
		t.Error("want a counterexample witness")
	}
}

func TestUnrollErrors(t *testing.T) {
	q := flowchart.MustParse(progWhile)
	ls, _ := FindLoops(q)
	if _, err := Unroll(q, ls[0], 0); err == nil {
		t.Error("maxIter 0 accepted")
	}
	bad := ls[0]
	bad.Decision = q.Start
	if _, err := Unroll(q, bad, 1); err == nil {
		t.Error("non-decision accepted")
	}
}

func TestIfThenElseErrors(t *testing.T) {
	q := flowchart.MustParse(progEx7)
	ds, _ := FindDiamonds(q)
	bad := ds[0]
	bad.Decision = q.Start
	if _, err := IfThenElse(q, bad); err == nil {
		t.Error("non-decision accepted")
	}
}

func TestEquivalentArityMismatch(t *testing.T) {
	p := flowchart.MustParse("inputs x\n y := x\n halt\n")
	q := flowchart.MustParse("inputs a b\n y := a\n halt\n")
	if _, _, err := Equivalent(p, q, core.Grid(1, 0)); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestEmptyArmDiamond(t *testing.T) {
	// One-armed if: true arm assigns, false arm goes straight to the join.
	q := flowchart.MustParse(`
inputs x1 x2
    if x1 == 0 goto A else J
A:  y := x2
    goto J
J:  halt
`)
	ds, err := FindDiamonds(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || len(ds[0].FalseArm) != 0 {
		t.Fatalf("diamonds = %+v", ds)
	}
	qt, err := IfThenElse(q, ds[0])
	if err != nil {
		t.Fatal(err)
	}
	if ok, w, err := Equivalent(q, qt, dom2()); err != nil || !ok {
		t.Fatalf("one-armed transform not equivalent (witness %v, err %v)", w, err)
	}
	// The transformed program keeps soundness under surveillance for all
	// policies.
	for _, J := range lattice.Subsets(2) {
		m := surveillance.MustMechanism(qt, J, surveillance.Untimed)
		pol := core.NewAllowSet(2, J)
		sr, err := core.CheckSoundness(m, pol, dom2(), core.ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Sound {
			t.Errorf("policy %s: %s", pol.Name(), sr)
		}
	}
}
