package transform

import (
	"fmt"
	"strings"

	"spm/internal/flowchart"
)

// Diamond describes an if-then-else occurrence in the sense of Section 4:
// a decision box whose two arms are straight-line chains of assignment
// boxes converging at a common join box.
type Diamond struct {
	Decision flowchart.NodeID
	TrueArm  []flowchart.NodeID
	FalseArm []flowchart.NodeID
	Join     flowchart.NodeID
}

// FindDiamonds returns the if-then-else occurrences of p, in decision-ID
// order. Arms must consist solely of assignment boxes, each with a single
// predecessor, so that the region is single-entry single-exit.
func FindDiamonds(p *flowchart.Program) ([]Diamond, error) {
	g, err := Analyze(p)
	if err != nil {
		return nil, err
	}
	var out []Diamond
	for _, d := range g.Decisions() {
		n := &p.Nodes[d]
		tArm, tEnd, ok := linearArm(p, g, n.True)
		if !ok {
			continue
		}
		fArm, fEnd, ok := linearArm(p, g, n.False)
		if !ok {
			continue
		}
		if tEnd != fEnd || tEnd == d {
			continue
		}
		out = append(out, Diamond{Decision: d, TrueArm: tArm, FalseArm: fArm, Join: tEnd})
	}
	return out, nil
}

// linearArm walks a chain of single-predecessor assignment boxes starting
// at id, returning the chain and the first node after it (the candidate
// join).
func linearArm(p *flowchart.Program, g *CFG, id flowchart.NodeID) (arm []flowchart.NodeID, end flowchart.NodeID, ok bool) {
	const armLimit = 1024 // defensive: arms are finite chains
	for range make([]struct{}, armLimit) {
		n := &p.Nodes[id]
		if n.Kind != flowchart.KindAssign {
			return arm, id, true
		}
		if len(g.Preds[id]) != 1 {
			return arm, id, true
		}
		arm = append(arm, id)
		id = n.Next
	}
	return nil, flowchart.NoNode, false
}

// IfThenElse applies the paper's if-then-else transform to the diamond d
// in p, returning a new, functionally equivalent program in which the
// branch has been replaced by straight-line conditional-select
// assignments:
//
//	t      := ite(B, 1, 0)
//	v      := ite(t == 1, E, v)   for each true-arm assignment
//	w      := ite(t == 0, F, w)   for each false-arm assignment
//
// Both arms' assignments become unconditional (the untaken arm's become
// identity assignments), which is exactly what makes surveillance on the
// transformed program sound — and also exactly why the transform can make
// the mechanism less complete (Example 8): every target now carries the
// test's classes.
func IfThenElse(p *flowchart.Program, d Diamond) (*flowchart.Program, error) {
	q := p.Clone()
	if !strings.HasSuffix(q.Name, "_ite") {
		q.Name += "_ite"
	}
	dec := &q.Nodes[d.Decision]
	if dec.Kind != flowchart.KindDecision {
		return nil, fmt.Errorf("transform: node %d is %s, not a decision", d.Decision, dec.Kind)
	}
	cond := dec.Cond
	tmp := freshVar(q, "t_ite")

	// The decision node itself becomes the guard assignment, so all edges
	// into the diamond remain valid.
	*dec = flowchart.Node{
		Kind:   flowchart.KindAssign,
		Target: tmp,
		Expr:   flowchart.Ite(cond, flowchart.C(1), flowchart.C(0)),
		Next:   flowchart.NoNode,
		Label:  dec.Label,
	}
	prev := d.Decision
	appendGuarded := func(armIDs []flowchart.NodeID, takenWhen int64) error {
		for _, id := range armIDs {
			a := &p.Nodes[id]
			if a.Kind != flowchart.KindAssign {
				return fmt.Errorf("transform: arm node %d is %s, not an assignment", id, a.Kind)
			}
			guard := flowchart.Eq(flowchart.V(tmp), flowchart.C(takenWhen))
			node := q.AddNode(flowchart.Node{
				Kind:   flowchart.KindAssign,
				Target: a.Target,
				Expr:   flowchart.Ite(guard, a.Expr, flowchart.V(a.Target)),
				Next:   flowchart.NoNode,
			})
			q.Nodes[prev].Next = node
			prev = node
		}
		return nil
	}
	if err := appendGuarded(d.TrueArm, 1); err != nil {
		return nil, err
	}
	if err := appendGuarded(d.FalseArm, 0); err != nil {
		return nil, err
	}
	q.Nodes[prev].Next = d.Join
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("transform: result invalid: %w", err)
	}
	return q, nil
}

// IfThenElseAll repeatedly applies the if-then-else transform until no
// diamond remains, returning the final program and the number of diamonds
// eliminated. Whether applying it is *advisable* is a different question —
// Example 8 — which is why the untransformed program is left intact.
func IfThenElseAll(p *flowchart.Program) (*flowchart.Program, int, error) {
	cur := p
	applied := 0
	for {
		ds, err := FindDiamonds(cur)
		if err != nil {
			return nil, applied, err
		}
		if len(ds) == 0 {
			return cur, applied, nil
		}
		next, err := IfThenElse(cur, ds[0])
		if err != nil {
			return nil, applied, err
		}
		cur = next
		applied++
	}
}

// freshVar returns a variable name with the given prefix not already used
// by the program.
func freshVar(p *flowchart.Program, prefix string) string {
	used := make(map[string]bool)
	for _, v := range p.Variables() {
		used[v] = true
	}
	for i := 0; ; i++ {
		cand := fmt.Sprintf("%s%d", prefix, i)
		if !used[cand] {
			return cand
		}
	}
}
