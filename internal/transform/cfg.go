// Package transform implements the program transformations of Sections 4
// and 5 of Jones & Lipton — the if-then-else transform, the while
// (unrolling) transform, and the supporting control-flow analyses
// (reachability, predecessors, postdominators, control dependence) that
// the static certification of Section 5 also relies on.
//
// The transforms produce functionally equivalent programs; applying the
// surveillance mechanism to the transformed program therefore yields a
// sound mechanism for the original program (Theorem 3 plus functional
// equivalence). As Example 8 shows, a transform may make the resulting
// mechanism either more or less complete, which is why every transform
// here returns a new program and leaves the choice to the caller.
package transform

import (
	"fmt"

	"spm/internal/flowchart"
)

// CFG holds derived control-flow facts about a program. Node IDs are the
// program's own; the virtual exit used for postdominance is VirtualExit.
type CFG struct {
	P *flowchart.Program
	// Preds lists the predecessors of each node.
	Preds [][]flowchart.NodeID
	// Reachable marks nodes reachable from the start box.
	Reachable []bool
	// pdom[n] is the set of nodes that postdominate n (every path from n
	// to any halt passes through them), encoded as a bitset over node IDs
	// plus the virtual exit.
	pdom []bitset
	// ipdom[n] is the immediate postdominator of n, or VirtualExit when
	// the closest postdominator is the virtual exit (e.g. for halt boxes),
	// or NoNode for unreachable nodes.
	ipdom []flowchart.NodeID
}

// VirtualExit is the pseudo-node that every halt box flows to, giving the
// CFG a unique exit for postdominance.
const VirtualExit flowchart.NodeID = -2

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// intersectWith sets b = b ∩ o and reports whether b changed.
func (b bitset) intersectWith(o bitset) bool {
	changed := false
	for i := range b {
		nv := b[i] & o[i]
		if nv != b[i] {
			b[i] = nv
			changed = true
		}
	}
	return changed
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Analyze computes the CFG facts for p. The program must validate.
func Analyze(p *flowchart.Program) (*CFG, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Nodes)
	g := &CFG{
		P:         p,
		Preds:     make([][]flowchart.NodeID, n),
		Reachable: make([]bool, n),
		ipdom:     make([]flowchart.NodeID, n),
	}
	// Reachability and predecessors.
	stack := []flowchart.NodeID{p.Start}
	g.Reachable[p.Start] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Nodes[id].Succs() {
			g.Preds[s] = append(g.Preds[s], id)
			if !g.Reachable[s] {
				g.Reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	g.computePostdominators()
	return g, nil
}

// computePostdominators runs the standard iterative dataflow over the
// reverse CFG with a virtual exit at index n (so bitsets have n+1 slots).
func (g *CFG) computePostdominators() {
	p := g.P
	n := len(p.Nodes)
	exitIdx := n // virtual exit position in bitsets
	full := newBitset(n + 1)
	for i := 0; i <= n; i++ {
		full.set(i)
	}
	g.pdom = make([]bitset, n)
	for i := 0; i < n; i++ {
		if !g.Reachable[i] {
			g.pdom[i] = newBitset(n + 1) // empty; unreachable nodes excluded
			continue
		}
		if p.Nodes[i].Kind == flowchart.KindHalt {
			b := newBitset(n + 1)
			b.set(i)
			b.set(exitIdx)
			g.pdom[i] = b
		} else {
			g.pdom[i] = full.clone()
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if !g.Reachable[i] || p.Nodes[i].Kind == flowchart.KindHalt {
				continue
			}
			succs := p.Nodes[i].Succs()
			if len(succs) == 0 {
				continue
			}
			acc := g.pdom[succs[0]].clone()
			for _, s := range succs[1:] {
				acc.intersectWith(g.pdom[s])
			}
			acc.set(i)
			if g.pdom[i].intersectWith(acc) {
				changed = true
			}
			// intersectWith computes pdom ∩ acc; since pdom starts full
			// and acc already includes i, this is the standard update.
		}
	}
	// Immediate postdominators: among the strict postdominators of i, the
	// one closest to i is the one postdominated by all the others —
	// equivalently, the one with the largest pdom set.
	for i := 0; i < n; i++ {
		g.ipdom[i] = flowchart.NoNode
		if !g.Reachable[i] {
			continue
		}
		best := flowchart.NodeID(VirtualExit)
		bestCount := -1
		for j := 0; j < n; j++ {
			if j == i || !g.pdom[i].has(j) {
				continue
			}
			if c := g.pdom[j].count(); c > bestCount {
				bestCount = c
				best = flowchart.NodeID(j)
			}
		}
		g.ipdom[i] = best
	}
}

// PostDominates reports whether a postdominates b: every path from b to a
// halt passes through a.
func (g *CFG) PostDominates(a, b flowchart.NodeID) bool {
	if !g.Reachable[b] {
		return false
	}
	return g.pdom[b].has(int(a))
}

// ImmediatePostDominator returns the immediate postdominator of id:
// the first node every path from id must eventually reach. For halt boxes
// (and decisions whose arms never rejoin before halting) it returns
// VirtualExit; for unreachable nodes, NoNode.
func (g *CFG) ImmediatePostDominator(id flowchart.NodeID) flowchart.NodeID {
	return g.ipdom[id]
}

// Region returns the set of nodes control-dependent on the decision d in
// the region sense of Denning & Denning: nodes reachable from a successor
// of d without passing through d's immediate postdominator (the join). The
// join itself is excluded; d is excluded. These are exactly the nodes whose
// execution is conditioned on d's predicate, so static certification adds
// d's test taint to every assignment among them.
func (g *CFG) Region(d flowchart.NodeID) ([]flowchart.NodeID, error) {
	node := &g.P.Nodes[d]
	if node.Kind != flowchart.KindDecision {
		return nil, fmt.Errorf("transform: node %d is %s, not a decision", d, node.Kind)
	}
	join := g.ipdom[d]
	seen := make(map[flowchart.NodeID]bool)
	var out []flowchart.NodeID
	var stack []flowchart.NodeID
	push := func(id flowchart.NodeID) {
		if id == join || seen[id] {
			return
		}
		seen[id] = true
		stack = append(stack, id)
	}
	push(node.True)
	push(node.False)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, id)
		for _, s := range g.P.Nodes[id].Succs() {
			push(s)
		}
	}
	return out, nil
}

// Decisions returns the reachable decision nodes in ID order.
func (g *CFG) Decisions() []flowchart.NodeID {
	var out []flowchart.NodeID
	for i := range g.P.Nodes {
		if g.Reachable[i] && g.P.Nodes[i].Kind == flowchart.KindDecision {
			out = append(out, flowchart.NodeID(i))
		}
	}
	return out
}
