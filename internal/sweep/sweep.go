// Package sweep is the shared parallel domain-enumeration engine behind
// every exhaustive verdict the library produces: soundness, maximality,
// completeness, and the pass-count columns of the experiment tables all
// reduce to "visit every tuple of a finite cartesian product and fold the
// observations".
//
// The engine indexes the product 0..Size-1 in mixed radix (last position
// fastest, matching core.Domain.Enumerate) and hands out fixed-size chunks
// of that index space from a single atomic cursor. Workers that finish a
// chunk immediately claim the next one, so load balances dynamically even
// when per-tuple cost is skewed — the work-stealing counterpart of the
// join-the-shortest-queue results motivating the design. Within a chunk a
// worker advances an odometer rather than re-dividing, so the per-tuple
// scheduling cost is a few array writes.
//
// The callback receives the worker index so callers can keep per-worker
// state (view tables, counters) without locks and merge it after Run
// returns. The input buffer is reused per worker; callbacks must copy it if
// they retain it.
package sweep

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTooLarge is returned by Run when the cartesian product has more tuples
// than fit in an int, which would otherwise wrap the index space and
// silently skip (or repeat) tuples.
var ErrTooLarge = errors.New("sweep: domain product overflows int")

// ErrBadRange is returned by Run when Config.Offset or Config.Count is
// negative.
var ErrBadRange = errors.New("sweep: negative shard offset or count")

// DefaultChunk is the chunk size used when Config.Chunk is unset. It is
// large enough that cursor contention is negligible and small enough that
// a skewed tail still balances across workers.
const DefaultChunk = 1024

// Observer receives engine events as a sweep runs — the instrumentation
// seam the policy-checking service hangs chunk counters, chunk-duration
// histograms, and per-job trace events on. Implementations must be safe
// for concurrent use: with multiple workers, ChunkDone is called from
// every worker goroutine. A nil Config.Observer costs one predictable
// branch per chunk, so library callers and benchmarks that don't
// observe pay effectively nothing.
type Observer interface {
	// ChunkDone reports one completed chunk: the worker that ran it,
	// the number of tuples it covered, and how long it took.
	ChunkDone(worker, tuples int, d time.Duration)
}

// Config tunes the engine. The zero value means "pick sensible defaults".
type Config struct {
	// Workers is the number of goroutines; ≤ 0 means runtime.NumCPU().
	Workers int
	// Chunk is the number of tuples claimed per cursor advance; ≤ 0 picks
	// a size that gives every worker several chunks.
	Chunk int
	// Offset restricts the run to the suffix of the mixed-radix index
	// space starting at this product index — the shard primitive behind
	// distributed checking. 0 starts at the beginning; negative is an
	// error.
	Offset int
	// Count bounds how many product indices the run visits from Offset:
	// the run covers [Offset, Offset+Count), clamped to the product size.
	// 0 means "through the end"; negative is an error.
	Count int
	// Progress, when non-nil, is atomically advanced by the number of
	// tuples visited as each chunk completes. Long-running sweeps (the
	// policy-checking service's job lifecycle) read it to report progress
	// without adding per-tuple overhead; granularity is one chunk.
	Progress *atomic.Int64
	// Commit, when non-nil, is called as the contiguous completed prefix
	// of the run's range grows: once every chunk before index n (relative
	// to the range start) has completed, Commit(n) fires. Unlike Progress
	// — which counts completed chunks in any order — the committed prefix
	// is a resumption point: every tuple below it has been visited, so a
	// checkpointing caller (the persistent verdict store's crash-resume
	// cursor) can durably record it. Calls are serialized and strictly
	// monotone; granularity is one chunk.
	Commit func(done int)
	// Throttle, when positive, makes every worker sleep this long after
	// each completed chunk — an artificial slow-down hook for straggler
	// testing (a deliberately throttled `spm serve` node lets the elastic
	// cluster's steal/speculate paths be exercised deterministically). It
	// never changes which tuples are visited, only how fast; cancellation
	// still lands within one chunk because the sleep itself observes ctx.
	Throttle time.Duration
	// Observer, when non-nil, receives a ChunkDone callback for every
	// completed chunk (see Observer). Like Progress, it adds no
	// per-tuple overhead; unlike Progress it also carries the chunk's
	// wall-clock duration, the raw material for chunk-latency
	// histograms.
	Observer Observer
}

func (c Config) normalized(size int) Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Workers > size && size > 0 {
		c.Workers = size
	}
	if c.Chunk <= 0 {
		c.Chunk = size / (c.Workers * 8)
		if c.Chunk < 1 {
			c.Chunk = 1
		}
		if c.Chunk > DefaultChunk {
			c.Chunk = DefaultChunk
		}
	}
	return c
}

// Size returns the number of tuples in the cartesian product of values,
// saturating at math.MaxInt when the product overflows. The empty product
// (no positions) has size 1: the single empty tuple.
func Size(values [][]int64) int {
	n, err := size(values)
	if err != nil {
		return math.MaxInt
	}
	return n
}

func size(values [][]int64) (int, error) {
	n := 1
	for _, vs := range values {
		if len(vs) == 0 {
			return 0, nil
		}
		if n > math.MaxInt/len(vs) {
			return 0, ErrTooLarge
		}
		n *= len(vs)
	}
	return n, nil
}

// ResolvedWorkers returns the worker count Run will actually use for a
// product of the given size, so callers can size per-worker state once and
// agree with the engine.
func (c Config) ResolvedWorkers(size int) int {
	lo, hi, err := c.Bounds(size)
	if err != nil {
		return c.normalized(size).Workers
	}
	return c.normalized(hi - lo).Workers
}

// Bounds resolves Offset/Count against a product of the given size: the
// run visits product indices [lo, hi). Callers that must agree with the
// engine on how many tuples a shard covers (verdict Checked totals, job
// progress denominators) use this rather than re-deriving the clamp.
func (c Config) Bounds(size int) (lo, hi int, err error) {
	if c.Offset < 0 || c.Count < 0 {
		return 0, 0, ErrBadRange
	}
	lo = c.Offset
	if lo > size {
		lo = size
	}
	hi = size
	if c.Count > 0 && c.Count < hi-lo {
		hi = lo + c.Count
	}
	return lo, hi, nil
}

// Run enumerates the cartesian product of values, calling fn once for every
// tuple. fn is invoked concurrently from cfg.Workers goroutines; the worker
// argument (0 ≤ worker < cfg.Workers) lets the callback address per-worker
// state without locking. The input slice is owned by the worker and reused
// between calls — copy it to retain it. Enumeration visits every tuple of
// the configured range exactly once (the whole product by default; the
// contiguous shard [Offset, Offset+Count) when cfg restricts it); the
// first error returned by fn stops all workers (tuples already in flight
// may still be visited) and is returned.
func Run(values [][]int64, cfg Config, fn func(worker int, input []int64) error) error {
	return RunContext(context.Background(), values, cfg, fn)
}

// HintFunc is the callback of RunHint/RunHintContext: fn additionally
// receives carry, the number of leading coordinates guaranteed unchanged
// since the previous tuple this worker visited within its current chunk.
// The odometer walk knows it exactly: an increment that stops at digit i
// (no carry past it) leaves coordinates [0, i) untouched, so the callback
// learns carry == i for free. Consecutive same-row tuples report
// carry == len(input)-1 (only the innermost coordinate moved); the first
// tuple of every chunk reports carry == 0 — the previous tuple, if any,
// belonged to another worker's chunk, so nothing is guaranteed.
//
// The hint is what the snapshot-stack compiled fast path keys on: a
// carry of c says every per-axis execution snapshot at depth ≤ c is still
// valid, so the run can resume from the deepest one instead of starting
// at instruction zero (flowchart.SnapshotStack.Run) — the single-axis
// special case being the PR-5 prefix memo, which only used
// carry == len(input)-1.
type HintFunc func(worker int, input []int64, carry int) error

// RunHint is Run with the innermost-axis hint; see HintFunc.
func RunHint(values [][]int64, cfg Config, fn HintFunc) error {
	return RunHintContext(context.Background(), values, cfg, fn)
}

// RunHintContext is RunContext with the carry-depth hint: the same
// chunked odometer-ordered enumeration, the same cancellation and shard
// semantics, with fn told how many leading coordinates are unchanged
// since its previous tuple. Both entry points share one engine, so they
// visit exactly the same index set for a given Config.
func RunHintContext(ctx context.Context, values [][]int64, cfg Config, fn HintFunc) error {
	return runRange(ctx, values, cfg,
		func(worker int) error { return fn(worker, nil, 0) },
		func(start, end, worker int) error { return runChunkHint(values, start, end, worker, fn) })
}

// BatchFunc is the callback of RunBatch/RunBatchContext: instead of one
// tuple per call, fn receives a stride of up to width consecutive tuples
// that differ only in the last — fastest-varying — coordinate. input holds
// the first tuple of the stride; last holds the innermost coordinate of
// every tuple in it (so last[0] == input[len(input)-1] and the stride
// covers the tuples obtained by substituting each element of last). Strides
// never cross an odometer carry or a chunk boundary, so the batch is
// exactly the unit a columnar executor can run from one shared prefix.
//
// carry is the batch lift of HintFunc's hint: the number of leading
// coordinates guaranteed unchanged since the previous stride on this
// worker (within its current chunk). A stride continuing the same
// odometer row reports carry == len(input)-1 — a prefix snapshot
// recorded on that earlier stride still applies — and a stride reached
// through an odometer carry at digit i reports carry == i, so per-axis
// snapshots at depth ≤ i survive the row change. The first stride of
// every chunk reports 0.
//
// Both slices are owned by the worker and reused between calls; fn may
// overwrite input's last element (the natural way to reconstruct per-lane
// tuples) but must copy anything it retains.
type BatchFunc func(worker int, input []int64, last []int64, carry int) error

// RunBatch is RunBatchContext with a background context.
func RunBatch(values [][]int64, cfg Config, width int, fn BatchFunc) error {
	return RunBatchContext(context.Background(), values, cfg, width, fn)
}

// RunBatchContext is RunContext with tuples delivered in innermost-axis
// strides of up to width: the same chunked odometer-ordered enumeration,
// cancellation, and shard semantics, with fn called once per stride instead
// of once per tuple. Tuple order within and across calls is identical to
// RunContext's, so per-worker fold state (view tables, first-witness
// selection) is path-independent between the scalar and batch entry points.
// width < 1 is treated as 1. The zero-arity product delivers its single
// empty tuple as one call with nil input and nil last.
func RunBatchContext(ctx context.Context, values [][]int64, cfg Config, width int, fn BatchFunc) error {
	if width < 1 {
		width = 1
	}
	return runRange(ctx, values, cfg,
		func(worker int) error { return fn(worker, nil, nil, 0) },
		func(start, end, worker int) error { return runChunkBatch(values, start, end, worker, width, fn) })
}

// RunContext is Run with cancellation: workers observe ctx between chunks,
// so after ctx is cancelled every worker stops within one chunk of tuples
// and RunContext returns ctx's error. A cancelled sweep has visited a
// prefix-plus-in-flight-chunks subset of the product; cfg.Progress reflects
// exactly the tuples whose chunks completed. fn errors take precedence over
// cancellation, and a cancellation that loses the race with the final
// chunks — every tuple visited — reports success rather than discarding a
// complete enumeration.
func RunContext(ctx context.Context, values [][]int64, cfg Config, fn func(worker int, input []int64) error) error {
	return runRange(ctx, values, cfg,
		func(worker int) error { return fn(worker, nil) },
		func(start, end, worker int) error { return runChunk(values, start, end, worker, fn) })
}

// runRange is the engine shared by RunContext and RunHintContext: it
// resolves the shard range, claims chunks from the cursor, and delegates
// each [start, end) slice to chunk. empty handles the zero-arity product
// (one empty tuple).
func runRange(ctx context.Context, values [][]int64, cfg Config, empty func(worker int) error, chunk func(start, end, worker int) error) error {
	size, err := size(values)
	if err != nil {
		return err
	}
	lo, hi, err := cfg.Bounds(size)
	if err != nil {
		return err
	}
	span := hi - lo
	if span == 0 {
		return nil
	}
	done := ctx.Done()
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if cancelled() {
		return ctx.Err()
	}
	if len(values) == 0 {
		err := empty(0)
		if err == nil {
			if cfg.Observer != nil {
				cfg.Observer.ChunkDone(0, 1, 0)
			}
			if cfg.Progress != nil {
				cfg.Progress.Add(1)
			}
			if cfg.Commit != nil {
				cfg.Commit(1)
			}
		}
		return err
	}
	cfg = cfg.normalized(span)
	if cfg.Workers == 1 {
		for start := lo; start < hi; start += cfg.Chunk {
			if cancelled() {
				return ctx.Err()
			}
			end := start + cfg.Chunk
			if end > hi {
				end = hi
			}
			if err := runObserved(chunk, start, end, 0, cfg.Observer); err != nil {
				return err
			}
			if cfg.Progress != nil {
				cfg.Progress.Add(int64(end - start))
			}
			if cfg.Commit != nil {
				// One worker completes chunks in range order, so every
				// chunk end is itself the contiguous prefix.
				cfg.Commit(end - lo)
			}
			// No sleep after the final chunk: a complete enumeration must
			// report success even if cancellation lands during the pause,
			// matching the multi-worker visited==span rule.
			if end < hi {
				if err := throttle(ctx, cfg.Throttle); err != nil {
					return err
				}
			}
		}
		return nil
	}

	var cursor atomic.Int64
	var stop atomic.Bool
	var visited atomic.Int64
	var commits *commitTracker
	if cfg.Commit != nil {
		commits = newCommitTracker(cfg.Commit)
	}
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				if cancelled() {
					return
				}
				start := int64(lo) + cursor.Add(int64(cfg.Chunk)) - int64(cfg.Chunk)
				if start >= int64(hi) {
					return
				}
				end := start + int64(cfg.Chunk)
				if end > int64(hi) {
					end = int64(hi)
				}
				if err := runObserved(chunk, int(start), int(end), w, cfg.Observer); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				visited.Add(end - start)
				if cfg.Progress != nil {
					cfg.Progress.Add(end - start)
				}
				if commits != nil {
					commits.done(int(start)-lo, int(end)-lo)
				}
				if throttle(ctx, cfg.Throttle) != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// A cancellation that lands while the last chunks are in flight may
	// lose the race with completion: if every tuple was visited anyway,
	// the verdict is whole, so report success — matching the one-worker
	// path, which returns nil once its final chunk ran.
	if visited.Load() == int64(span) {
		return nil
	}
	return ctx.Err()
}

// runObserved runs one chunk, timing it only when an observer is
// installed — the nil path stays exactly the unobserved engine.
func runObserved(chunk func(start, end, worker int) error, start, end, worker int, obs Observer) error {
	if obs == nil {
		return chunk(start, end, worker)
	}
	t0 := time.Now()
	err := chunk(start, end, worker)
	if err == nil {
		obs.ChunkDone(worker, end-start, time.Since(t0))
	}
	return err
}

// throttle sleeps for d after a completed chunk, returning early with
// ctx's error if the caller is cancelled mid-sleep. d ≤ 0 is free.
func throttle(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// commitTracker turns out-of-order chunk completions into the monotone
// contiguous-prefix commits of Config.Commit. Workers claim chunks from an
// ordered cursor, so a completed chunk either extends the prefix directly
// or parks (by its range-relative start) until every chunk before it lands.
type commitTracker struct {
	mu      sync.Mutex
	next    int         // range-relative index the prefix has reached
	pending map[int]int // completed chunks ahead of the prefix: start → end
	fn      func(done int)
}

func newCommitTracker(fn func(done int)) *commitTracker {
	return &commitTracker{pending: make(map[int]int), fn: fn}
}

// done records the completion of the range-relative chunk [start, end),
// invoking fn (under the tracker's lock, so calls are serialized and
// monotone) whenever the contiguous prefix advances.
func (t *commitTracker) done(start, end int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if start != t.next {
		t.pending[start] = end
		return
	}
	t.next = end
	for e, ok := t.pending[t.next]; ok; e, ok = t.pending[t.next] {
		delete(t.pending, t.next)
		t.next = e
	}
	t.fn(t.next)
}

// runChunk visits product indices [start, end): one mixed-radix decode of
// start, then odometer increments.
func runChunk(values [][]int64, start, end, worker int, fn func(worker int, input []int64) error) error {
	k := len(values)
	idx := make([]int, k)
	buf := make([]int64, k)
	rem := start
	for i := k - 1; i >= 0; i-- {
		n := len(values[i])
		idx[i] = rem % n
		buf[i] = values[i][idx[i]]
		rem /= n
	}
	for pos := start; pos < end; pos++ {
		if err := fn(worker, buf); err != nil {
			return err
		}
		for i := k - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(values[i]) {
				buf[i] = values[i][idx[i]]
				break
			}
			idx[i] = 0
			buf[i] = values[i][0]
		}
	}
	return nil
}

// runChunkBatch is runChunk grouped into innermost-axis strides: the same
// mixed-radix decode and odometer walk, with the innermost digit advanced
// up to width positions at a time. A stride is clipped to the end of its
// row (the next carry) and to the end of the chunk, so callbacks always see
// lanes sharing one prefix and the chunk visits exactly [start, end).
func runChunkBatch(values [][]int64, start, end, worker, width int, fn BatchFunc) error {
	k := len(values)
	idx := make([]int, k)
	buf := make([]int64, k)
	rem := start
	for i := k - 1; i >= 0; i-- {
		n := len(values[i])
		idx[i] = rem % n
		buf[i] = values[i][idx[i]]
		rem /= n
	}
	inner := values[k-1]
	carry := 0
	for pos := start; pos < end; {
		j := idx[k-1]
		n := len(inner) - j
		if n > width {
			n = width
		}
		if n > end-pos {
			n = end - pos
		}
		// The callback may have scribbled the innermost coordinate of buf
		// on the previous call; every other coordinate is only written by
		// the carry below.
		buf[k-1] = inner[j]
		if err := fn(worker, buf, inner[j:j+n:j+n], carry); err != nil {
			return err
		}
		pos += n
		j += n
		if j < len(inner) {
			idx[k-1] = j
			carry = k - 1
			continue
		}
		idx[k-1] = 0
		carry = 0
		for i := k - 2; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(values[i]) {
				buf[i] = values[i][idx[i]]
				carry = i
				break
			}
			idx[i] = 0
			buf[i] = values[i][0]
		}
	}
	return nil
}

// runChunkHint is runChunk with carry tracking: the same mixed-radix
// decode and odometer walk, additionally reporting the digit at which the
// increment that produced the current tuple stopped — i.e. how many
// leading coordinates the increment left untouched. The first tuple of
// the chunk always reports carry 0: the previous tuple (if any) belonged
// to another worker's chunk, so no coordinate is guaranteed.
func runChunkHint(values [][]int64, start, end, worker int, fn HintFunc) error {
	k := len(values)
	idx := make([]int, k)
	buf := make([]int64, k)
	rem := start
	for i := k - 1; i >= 0; i-- {
		n := len(values[i])
		idx[i] = rem % n
		buf[i] = values[i][idx[i]]
		rem /= n
	}
	carry := 0
	for pos := start; pos < end; pos++ {
		if err := fn(worker, buf, carry); err != nil {
			return err
		}
		carry = 0
		for i := k - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(values[i]) {
				buf[i] = values[i][idx[i]]
				carry = i
				break
			}
			idx[i] = 0
			buf[i] = values[i][0]
		}
	}
	return nil
}
