package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// sequential computes the reference multiset of tuples in Enumerate order.
func sequential(values [][]int64) []string {
	var out []string
	if len(values) == 0 {
		return []string{key(nil)}
	}
	for _, vs := range values {
		if len(vs) == 0 {
			return nil
		}
	}
	idx := make([]int, len(values))
	buf := make([]int64, len(values))
	for {
		for i := range values {
			buf[i] = values[i][idx[i]]
		}
		out = append(out, key(buf))
		j := len(values) - 1
		for j >= 0 {
			idx[j]++
			if idx[j] < len(values[j]) {
				break
			}
			idx[j] = 0
			j--
		}
		if j < 0 {
			return out
		}
	}
}

func key(in []int64) string { return fmt.Sprint(in) }

// collect runs the engine and returns the multiset of visited tuples.
func collect(t *testing.T, values [][]int64, cfg Config) map[string]int {
	t.Helper()
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64 // upper bound for per-worker buckets
	}
	buckets := make([]map[string]int, workers)
	for i := range buckets {
		buckets[i] = make(map[string]int)
	}
	if err := Run(values, cfg, func(w int, in []int64) error {
		buckets[w][key(in)]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	merged := make(map[string]int)
	for _, b := range buckets {
		for k, n := range b {
			merged[k] += n
		}
	}
	return merged
}

func TestRunVisitsEveryTupleOnce(t *testing.T) {
	cases := [][][]int64{
		{{0, 1, 2}, {0, 1, 2}},
		{{5}},
		{{0, 1}, {7}, {-1, 0, 1, 2}},
		{{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1}},
	}
	for _, values := range cases {
		want := sequential(values)
		for _, cfg := range []Config{{}, {Workers: 1}, {Workers: 3, Chunk: 1}, {Workers: 4, Chunk: 7}, {Workers: 16, Chunk: 2}} {
			got := collect(t, values, cfg)
			if len(want) != total(got) {
				t.Fatalf("cfg %+v: visited %d tuples, want %d", cfg, total(got), len(want))
			}
			for _, k := range want {
				if got[k] != 1 {
					t.Errorf("cfg %+v: tuple %s visited %d times", cfg, k, got[k])
				}
			}
		}
	}
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func TestRunEmptyProduct(t *testing.T) {
	calls := 0
	if err := Run([][]int64{{0, 1}, {}}, Config{Workers: 4}, func(int, []int64) error {
		calls++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("empty product visited %d tuples", calls)
	}
}

func TestRunNullaryProduct(t *testing.T) {
	var mu sync.Mutex
	var got [][]int64
	if err := Run(nil, Config{Workers: 4}, func(_ int, in []int64) error {
		mu.Lock()
		got = append(got, append([]int64(nil), in...))
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("nullary product visited %v, want one empty tuple", got)
	}
}

func TestRunErrorStopsAndPropagates(t *testing.T) {
	values := [][]int64{{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}}
	boom := fmt.Errorf("boom")
	err := Run(values, Config{Workers: 4, Chunk: 2}, func(_ int, in []int64) error {
		if in[0] == 3 && in[1] == 3 {
			return boom
		}
		return nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
}

func TestRunWorkerIndexInRange(t *testing.T) {
	const workers = 5
	err := Run([][]int64{{0, 1, 2, 3}, {0, 1, 2, 3}}, Config{Workers: workers, Chunk: 1}, func(w int, _ []int64) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker index %d out of range", w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSize(t *testing.T) {
	for _, tc := range []struct {
		values [][]int64
		want   int
	}{
		{nil, 1},
		{[][]int64{{1, 2, 3}}, 3},
		{[][]int64{{1, 2}, {1, 2, 3}}, 6},
		{[][]int64{{1, 2}, {}}, 0},
	} {
		if got := Size(tc.values); got != tc.want {
			t.Errorf("Size(%v) = %d, want %d", tc.values, got, tc.want)
		}
	}
}

// TestRunRandomizedMatchesSequential is the engine-level property test:
// random shapes, random worker/chunk settings, exact multiset agreement
// with sequential enumeration.
func TestRunRandomizedMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1975))
	for trial := 0; trial < 50; trial++ {
		k := 1 + r.Intn(4)
		values := make([][]int64, k)
		for i := range values {
			n := 1 + r.Intn(6)
			vs := make([]int64, n)
			base := int64(r.Intn(20) - 10)
			for j := range vs {
				vs[j] = base + int64(j) // distinct within a dimension so value tuples key uniquely
			}
			values[i] = vs
		}
		cfg := Config{Workers: 1 + r.Intn(8), Chunk: 1 + r.Intn(9)}
		want := sequential(values)
		got := collect(t, values, cfg)
		if total(got) != len(want) {
			t.Fatalf("trial %d cfg %+v: visited %d, want %d", trial, cfg, total(got), len(want))
		}
		for _, k := range want {
			if got[k] != 1 {
				t.Fatalf("trial %d cfg %+v: tuple %s visited %d times", trial, cfg, k, got[k])
			}
		}
	}
}

func TestRunOverflowingProduct(t *testing.T) {
	vals := make([]int64, 32)
	for i := range vals {
		vals[i] = int64(i)
	}
	values := make([][]int64, 13) // 32^13 = 2^65 overflows int64, let alone int
	for i := range values {
		values[i] = vals
	}
	err := Run(values, Config{Workers: 2}, func(int, []int64) error { return nil })
	if err != ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	if Size(values) != math.MaxInt {
		t.Errorf("Size should saturate at MaxInt, got %d", Size(values))
	}
}

func TestResolvedWorkers(t *testing.T) {
	if got := (Config{Workers: 8}).ResolvedWorkers(4); got != 4 {
		t.Errorf("workers clamped to size: got %d, want 4", got)
	}
	if got := (Config{Workers: 3}).ResolvedWorkers(100); got != 3 {
		t.Errorf("explicit workers: got %d, want 3", got)
	}
	if got := (Config{}).ResolvedWorkers(100); got < 1 {
		t.Errorf("default workers: got %d, want >= 1", got)
	}
}

func TestRunProgressReachesSize(t *testing.T) {
	values := [][]int64{{0, 1, 2, 3}, {0, 1, 2}, {0, 1, 2, 3, 4}}
	want := int64(4 * 3 * 5)
	for _, workers := range []int{1, 3, 8} {
		var progress atomic.Int64
		cfg := Config{Workers: workers, Chunk: 7, Progress: &progress}
		if err := Run(values, cfg, func(int, []int64) error { return nil }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := progress.Load(); got != want {
			t.Errorf("workers=%d: progress = %d, want %d", workers, got, want)
		}
	}
}

func TestRunProgressMonotoneDuringSweep(t *testing.T) {
	values := [][]int64{{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}}
	var progress atomic.Int64
	var sawPartial atomic.Bool
	cfg := Config{Workers: 4, Chunk: 4, Progress: &progress}
	err := Run(values, cfg, func(int, []int64) error {
		if p := progress.Load(); p > 0 && p < 64 {
			sawPartial.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawPartial.Load() {
		t.Log("no partial progress observed (fast machine); counter still correct")
	}
	if got := progress.Load(); got != 64 {
		t.Errorf("final progress = %d, want 64", got)
	}
}

func TestRunNullaryProgress(t *testing.T) {
	var progress atomic.Int64
	if err := Run(nil, Config{Progress: &progress}, func(int, []int64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := progress.Load(); got != 1 {
		t.Errorf("nullary progress = %d, want 1", got)
	}
}

// TestRunContextCancelBoundedByChunk cancels mid-sweep and asserts every
// worker stops within one chunk: with the cancel fired from inside the
// callback, each of the W workers may finish the chunk it is on but must
// not claim another, so the visited count is bounded by visited-so-far
// plus W chunks.
func TestRunContextCancelBoundedByChunk(t *testing.T) {
	values := [][]int64{make([]int64, 100), make([]int64, 100)} // 10k tuples
	for i := range values[0] {
		values[0][i] = int64(i)
		values[1][i] = int64(i)
	}
	const workers, chunk = 4, 16
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var visited atomic.Int64
	var atCancel atomic.Int64
	err := RunContext(ctx, values, Config{Workers: workers, Chunk: chunk}, func(int, []int64) error {
		if visited.Add(1) == 5*chunk {
			atCancel.Store(visited.Load())
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	bound := atCancel.Load() + int64(workers*chunk)
	if got := visited.Load(); got > bound {
		t.Errorf("visited %d tuples after cancel at %d; bound is %d (one chunk per worker)",
			got, atCancel.Load(), bound)
	}
	if got := visited.Load(); got >= 10000 {
		t.Errorf("sweep ran to completion (%d tuples) despite cancellation", got)
	}
}

// TestRunContextCancelSingleWorker exercises the sequential path's
// per-chunk cancellation check.
func TestRunContextCancelSingleWorker(t *testing.T) {
	values := [][]int64{{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}} // 64 tuples
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var visited int
	err := RunContext(ctx, values, Config{Workers: 1, Chunk: 8}, func(int, []int64) error {
		visited++
		if visited == 8 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visited != 8 {
		t.Errorf("visited %d tuples, want exactly the chunk in flight (8)", visited)
	}
}

// TestRunContextPreCancelled never calls the callback.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunContext(ctx, [][]int64{{0, 1}}, Config{}, func(int, []int64) error {
		t.Error("callback ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCallbackErrorBeatsCancel: fn errors take precedence.
func TestRunContextCallbackErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := fmt.Errorf("boom")
	err := RunContext(ctx, [][]int64{{0, 1, 2, 3}}, Config{Workers: 2, Chunk: 1}, func(_ int, in []int64) error {
		cancel()
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback error", err)
	}
}
