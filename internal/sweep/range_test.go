package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// rangeValues is a 4×4×4 product: big enough that shards cross odometer
// carries, small enough to enumerate by hand.
var rangeValues = [][]int64{{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}}

// collectRange runs the engine over cfg's range and returns the visited
// tuples as a multiset.
func collectRange(t *testing.T, values [][]int64, cfg Config) map[string]int {
	t.Helper()
	var mu sync.Mutex
	got := make(map[string]int)
	if err := Run(values, cfg, func(w int, in []int64) error {
		mu.Lock()
		got[key(in)]++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return got
}

func TestRunRangeVisitsExactSlice(t *testing.T) {
	ref := sequential(rangeValues)
	size := len(ref)
	cases := []struct {
		name           string
		offset, count  int
		wantLo, wantHi int
	}{
		{"whole", 0, 0, 0, size},
		{"prefix", 0, 10, 0, 10},
		{"middle", 17, 13, 17, 30},
		{"suffix-by-zero-count", 50, 0, 50, size},
		{"suffix-clamped", 60, 100, 60, size},
		{"offset-at-end", size, 5, size, size},
		{"offset-past-end", size + 7, 0, size, size},
		{"single", 33, 1, 33, 34},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			got := collectRange(t, rangeValues, Config{Workers: workers, Chunk: 3, Offset: tc.offset, Count: tc.count})
			want := ref[tc.wantLo:tc.wantHi]
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: visited %d distinct tuples, want %d", tc.name, workers, len(got), len(want))
			}
			for _, k := range want {
				if got[k] != 1 {
					t.Fatalf("%s workers=%d: tuple %s visited %d times, want 1", tc.name, workers, k, got[k])
				}
			}
		}
	}
}

func TestRunRangeShardsPartition(t *testing.T) {
	ref := sequential(rangeValues)
	size := len(ref)
	for _, nShards := range []int{1, 2, 3, 7, size} {
		union := make(map[string]int)
		base, rem := size/nShards, size%nShards
		offset := 0
		for i := 0; i < nShards; i++ {
			count := base
			if i < rem {
				count++
			}
			for k, n := range collectRange(t, rangeValues, Config{Workers: 2, Chunk: 2, Offset: offset, Count: count}) {
				union[k] += n
			}
			offset += count
		}
		if len(union) != size {
			t.Fatalf("%d shards: union has %d tuples, want %d", nShards, len(union), size)
		}
		for k, n := range union {
			if n != 1 {
				t.Fatalf("%d shards: tuple %s visited %d times across shards, want 1", nShards, k, n)
			}
		}
	}
}

func TestRunRangeProgressCountsSpan(t *testing.T) {
	var progress atomic.Int64
	got := collectRange(t, rangeValues, Config{Workers: 3, Chunk: 4, Offset: 5, Count: 21, Progress: &progress})
	if len(got) != 21 {
		t.Fatalf("visited %d tuples, want 21", len(got))
	}
	if progress.Load() != 21 {
		t.Fatalf("progress = %d, want 21", progress.Load())
	}
}

func TestRunRangeNegativeBounds(t *testing.T) {
	for _, cfg := range []Config{{Offset: -1}, {Count: -1}} {
		err := RunContext(context.Background(), rangeValues, cfg, func(int, []int64) error { return nil })
		if !errors.Is(err, ErrBadRange) {
			t.Fatalf("cfg %+v: err = %v, want ErrBadRange", cfg, err)
		}
	}
}

func TestBoundsClamp(t *testing.T) {
	cases := []struct {
		offset, count, size int
		lo, hi              int
	}{
		{0, 0, 64, 0, 64},
		{10, 20, 64, 10, 30},
		{60, 20, 64, 60, 64},
		{100, 5, 64, 64, 64},
		{10, 0, 64, 10, 64},
	}
	for _, tc := range cases {
		lo, hi, err := (Config{Offset: tc.offset, Count: tc.count}).Bounds(tc.size)
		if err != nil || lo != tc.lo || hi != tc.hi {
			t.Errorf("Bounds(%d) with offset=%d count=%d = (%d, %d, %v), want (%d, %d, nil)",
				tc.size, tc.offset, tc.count, lo, hi, err, tc.lo, tc.hi)
		}
	}
}
