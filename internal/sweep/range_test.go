package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// rangeValues is a 4×4×4 product: big enough that shards cross odometer
// carries, small enough to enumerate by hand.
var rangeValues = [][]int64{{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}}

// collectRange runs the engine over cfg's range and returns the visited
// tuples as a multiset.
func collectRange(t *testing.T, values [][]int64, cfg Config) map[string]int {
	t.Helper()
	var mu sync.Mutex
	got := make(map[string]int)
	if err := Run(values, cfg, func(w int, in []int64) error {
		mu.Lock()
		got[key(in)]++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return got
}

func TestRunRangeVisitsExactSlice(t *testing.T) {
	ref := sequential(rangeValues)
	size := len(ref)
	cases := []struct {
		name           string
		offset, count  int
		wantLo, wantHi int
	}{
		{"whole", 0, 0, 0, size},
		{"prefix", 0, 10, 0, 10},
		{"middle", 17, 13, 17, 30},
		{"suffix-by-zero-count", 50, 0, 50, size},
		{"suffix-clamped", 60, 100, 60, size},
		{"offset-at-end", size, 5, size, size},
		{"offset-past-end", size + 7, 0, size, size},
		{"single", 33, 1, 33, 34},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			got := collectRange(t, rangeValues, Config{Workers: workers, Chunk: 3, Offset: tc.offset, Count: tc.count})
			want := ref[tc.wantLo:tc.wantHi]
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: visited %d distinct tuples, want %d", tc.name, workers, len(got), len(want))
			}
			for _, k := range want {
				if got[k] != 1 {
					t.Fatalf("%s workers=%d: tuple %s visited %d times, want 1", tc.name, workers, k, got[k])
				}
			}
		}
	}
}

func TestRunRangeShardsPartition(t *testing.T) {
	ref := sequential(rangeValues)
	size := len(ref)
	for _, nShards := range []int{1, 2, 3, 7, size} {
		union := make(map[string]int)
		base, rem := size/nShards, size%nShards
		offset := 0
		for i := 0; i < nShards; i++ {
			count := base
			if i < rem {
				count++
			}
			for k, n := range collectRange(t, rangeValues, Config{Workers: 2, Chunk: 2, Offset: offset, Count: count}) {
				union[k] += n
			}
			offset += count
		}
		if len(union) != size {
			t.Fatalf("%d shards: union has %d tuples, want %d", nShards, len(union), size)
		}
		for k, n := range union {
			if n != 1 {
				t.Fatalf("%d shards: tuple %s visited %d times across shards, want 1", nShards, k, n)
			}
		}
	}
}

func TestRunRangeProgressCountsSpan(t *testing.T) {
	var progress atomic.Int64
	got := collectRange(t, rangeValues, Config{Workers: 3, Chunk: 4, Offset: 5, Count: 21, Progress: &progress})
	if len(got) != 21 {
		t.Fatalf("visited %d tuples, want 21", len(got))
	}
	if progress.Load() != 21 {
		t.Fatalf("progress = %d, want 21", progress.Load())
	}
}

func TestRunRangeNegativeBounds(t *testing.T) {
	for _, cfg := range []Config{{Offset: -1}, {Count: -1}} {
		err := RunContext(context.Background(), rangeValues, cfg, func(int, []int64) error { return nil })
		if !errors.Is(err, ErrBadRange) {
			t.Fatalf("cfg %+v: err = %v, want ErrBadRange", cfg, err)
		}
	}
}

// TestRunHintVisitsSameIndexSet is the odometer-vs-strided regression:
// whatever chunking, sharding, and worker count the config picks, the
// hinted iterator must visit exactly the index set the plain engine
// visits — same tuples, same multiplicity.
func TestRunHintVisitsSameIndexSet(t *testing.T) {
	cfgs := []Config{
		{Workers: 1, Chunk: 3},
		{Workers: 1, Chunk: 4},
		{Workers: 4, Chunk: 3},
		{Workers: 4, Chunk: 5, Offset: 7, Count: 29},
		{Workers: 2, Chunk: 1, Offset: 60, Count: 0},
		{Workers: 3, Chunk: 1024},
	}
	for _, cfg := range cfgs {
		plain := collectRange(t, rangeValues, cfg)
		var mu sync.Mutex
		hinted := make(map[string]int)
		if err := RunHint(rangeValues, cfg, func(w int, in []int64, carry int) error {
			mu.Lock()
			hinted[key(in)]++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("cfg %+v: RunHint: %v", cfg, err)
		}
		if len(hinted) != len(plain) {
			t.Fatalf("cfg %+v: hinted visited %d distinct tuples, plain %d", cfg, len(hinted), len(plain))
		}
		for k, n := range plain {
			if hinted[k] != n {
				t.Fatalf("cfg %+v: tuple %s visited %d times hinted, %d plain", cfg, k, hinted[k], n)
			}
		}
	}
}

// TestRunHintInnerOnlyContract checks the innermost special case of the
// carry hint — the guarantee the single-axis prefix memo keyed on: whenever
// carry == k-1 is reported, the worker's previous tuple differed only in
// the last coordinate. Aligned single-worker chunking additionally pins the
// exact number of fully-hinted tuples.
func TestRunHintInnerOnlyContract(t *testing.T) {
	k := len(rangeValues)
	for _, cfg := range []Config{
		{Workers: 1, Chunk: 4},
		{Workers: 1, Chunk: 3},
		{Workers: 4, Chunk: 5},
		{Workers: 2, Chunk: 7, Offset: 11, Count: 40},
	} {
		var mu sync.Mutex
		prev := make(map[int][]int64)
		hintCount := 0
		if err := RunHint(rangeValues, cfg, func(w int, in []int64, carry int) error {
			mu.Lock()
			defer mu.Unlock()
			if carry == k-1 {
				hintCount++
				p, ok := prev[w]
				if !ok {
					t.Errorf("cfg %+v: worker %d hinted on its first tuple %v", cfg, w, in)
				} else {
					for i := 0; i < len(in)-1; i++ {
						if p[i] != in[i] {
							t.Errorf("cfg %+v: hint with outer coordinate changed: %v -> %v", cfg, p, in)
						}
					}
					if p[len(in)-1] == in[len(in)-1] {
						t.Errorf("cfg %+v: hint with innermost unchanged: %v -> %v", cfg, p, in)
					}
				}
			}
			prev[w] = append(prev[w][:0], in...)
			return nil
		}); err != nil {
			t.Fatalf("cfg %+v: RunHint: %v", cfg, err)
		}
		if cfg.Workers == 1 && cfg.Chunk == 4 && cfg.Offset == 0 {
			// Chunks align with the 4-wide innermost axis: every row is one
			// chunk, hinting 3 of its 4 tuples.
			if want := 48; hintCount != want {
				t.Fatalf("aligned chunking hinted %d tuples, want %d", hintCount, want)
			}
		}
	}
}

// TestRunHintCarryDepthContract checks the full carry guarantee: every
// reported carry c means the worker's previous tuple (within its current
// chunk) agrees on coordinates [0, c). The axes of rangeValues hold
// distinct values, so the odometer's carry is also exact — coordinate c
// itself must have changed on every non-first tuple — and one
// whole-domain chunk at one worker pins the carry distribution of the
// 4×4×4 walk: 63 increments split 48/12/3 by stop digit, plus the fresh
// first tuple at carry 0.
func TestRunHintCarryDepthContract(t *testing.T) {
	k := len(rangeValues)
	for _, cfg := range []Config{
		{Workers: 1, Chunk: 1024},
		{Workers: 1, Chunk: 5},
		{Workers: 4, Chunk: 3},
		{Workers: 2, Chunk: 6, Offset: 9, Count: 41},
	} {
		var mu sync.Mutex
		prev := make(map[int][]int64)
		counts := make([]int, k)
		if err := RunHint(rangeValues, cfg, func(w int, in []int64, carry int) error {
			mu.Lock()
			defer mu.Unlock()
			if carry < 0 || carry >= k {
				t.Errorf("cfg %+v: carry %d out of range [0, %d)", cfg, carry, k)
				return nil
			}
			counts[carry]++
			p, ok := prev[w]
			if ok {
				for i := 0; i < carry; i++ {
					if p[i] != in[i] {
						t.Errorf("cfg %+v: carry %d but coordinate %d changed: %v -> %v", cfg, carry, i, p, in)
					}
				}
				// A positive carry can only come from a mid-chunk odometer
				// increment (chunk-first tuples report 0), and the axes hold
				// distinct values, so the stop digit itself must have moved.
				if carry > 0 && p[carry] == in[carry] {
					t.Errorf("cfg %+v: carry %d but coordinate %d unchanged: %v -> %v", cfg, carry, carry, p, in)
				}
			} else if carry != 0 {
				t.Errorf("cfg %+v: worker %d first tuple %v reported carry %d, want 0", cfg, w, in, carry)
			}
			prev[w] = append(prev[w][:0], in...)
			return nil
		}); err != nil {
			t.Fatalf("cfg %+v: RunHint: %v", cfg, err)
		}
		if cfg.Workers == 1 && cfg.Chunk == 1024 && cfg.Offset == 0 {
			if counts[0] != 4 || counts[1] != 12 || counts[2] != 48 {
				t.Fatalf("whole-domain chunk carry distribution = %v, want [4 12 48]", counts)
			}
		}
	}
}

// TestRunHintEmptyProduct: the zero-arity product is one empty tuple,
// reported as a fresh row.
func TestRunHintEmptyProduct(t *testing.T) {
	calls := 0
	if err := RunHint(nil, Config{}, func(w int, in []int64, carry int) error {
		calls++
		if carry != 0 {
			t.Errorf("empty product reported carry %d, want 0", carry)
		}
		return nil
	}); err != nil {
		t.Fatalf("RunHint: %v", err)
	}
	if calls != 1 {
		t.Fatalf("empty product visited %d times, want 1", calls)
	}
}

func TestBoundsClamp(t *testing.T) {
	cases := []struct {
		offset, count, size int
		lo, hi              int
	}{
		{0, 0, 64, 0, 64},
		{10, 20, 64, 10, 30},
		{60, 20, 64, 60, 64},
		{100, 5, 64, 64, 64},
		{10, 0, 64, 10, 64},
	}
	for _, tc := range cases {
		lo, hi, err := (Config{Offset: tc.offset, Count: tc.count}).Bounds(tc.size)
		if err != nil || lo != tc.lo || hi != tc.hi {
			t.Errorf("Bounds(%d) with offset=%d count=%d = (%d, %d, %v), want (%d, %d, nil)",
				tc.size, tc.offset, tc.count, lo, hi, err, tc.lo, tc.hi)
		}
	}
}
