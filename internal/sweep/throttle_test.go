package sweep

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestThrottlePreservesEnumeration pins the straggler hook's contract:
// Throttle slows the sweep down but never changes which tuples are
// visited or how often — the throttled run is the unthrottled run, late.
func TestThrottlePreservesEnumeration(t *testing.T) {
	values := [][]int64{{0, 1, 2, 3}, {0, 1, 2, 3}}
	for _, workers := range []int{1, 4} {
		plain := collect(t, values, Config{Workers: workers, Chunk: 3})
		throttled := collect(t, values, Config{Workers: workers, Chunk: 3, Throttle: 100 * time.Microsecond})
		if len(throttled) != len(plain) {
			t.Fatalf("workers=%d: throttled visited %d tuples, plain %d", workers, len(throttled), len(plain))
		}
		for k, n := range plain {
			if throttled[k] != n {
				t.Fatalf("workers=%d: tuple %s visited %d times throttled, %d plain", workers, k, throttled[k], n)
			}
		}
	}
}

// TestThrottleObservesCancellation requires a throttled worker to stop
// mid-sleep when the context dies — the elastic coordinator's steal path
// cancels straggler jobs and must not wait out their throttle naps.
func TestThrottleObservesCancellation(t *testing.T) {
	values := [][]int64{{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}}
	ctx, cancel := context.WithCancel(context.Background())
	visited := 0
	start := time.Now()
	err := RunContext(ctx, values, Config{Workers: 1, Chunk: 4, Throttle: time.Hour}, func(w int, in []int64) error {
		visited++
		if visited == 4 { // end of the first chunk; the next nap is 1h
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled throttled sweep returned %v", err)
	}
	if visited != 4 {
		t.Fatalf("visited %d tuples after cancel in first chunk's nap", visited)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation waited out the throttle: %v", elapsed)
	}
}

// TestThrottleFinalChunkFree pins the completion rule: the single-worker
// path skips the nap after the final chunk, so a fully-enumerated
// throttled sweep succeeds even if the context dies the instant the last
// tuple lands.
func TestThrottleFinalChunkFree(t *testing.T) {
	values := [][]int64{{0, 1, 2}}
	ctx, cancel := context.WithCancel(context.Background())
	visited := 0
	err := RunContext(ctx, values, Config{Workers: 1, Chunk: 3, Throttle: time.Hour}, func(w int, in []int64) error {
		visited++
		if visited == 3 {
			cancel() // all tuples seen; no nap may follow
		}
		return nil
	})
	if err != nil {
		t.Fatalf("complete throttled sweep failed: %v", err)
	}
	if visited != 3 {
		t.Fatalf("visited %d of 3", visited)
	}
}
