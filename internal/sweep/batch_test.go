package sweep

import (
	"errors"
	"testing"
)

// stride is one recorded BatchFunc call.
type stride struct {
	worker int
	prefix string
	last   []int64
	carry  int
}

// collectBatch runs the batch iterator and records every call per worker.
func collectBatch(t *testing.T, values [][]int64, cfg Config, width int) []stride {
	t.Helper()
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	buckets := make([][]stride, workers)
	if err := RunBatch(values, cfg, width, func(w int, input []int64, last []int64, carry int) error {
		s := stride{worker: w, carry: carry}
		if len(input) > 0 {
			s.prefix = key(input[:len(input)-1])
			s.last = append([]int64(nil), last...)
		}
		buckets[w] = append(buckets[w], s)
		// Exercise the documented liberty: callers may scribble input's
		// innermost coordinate while expanding lanes.
		if len(input) > 0 {
			input[len(input)-1] = -99
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var all []stride
	for _, b := range buckets {
		all = append(all, b...)
	}
	return all
}

// TestRunBatchVisitsEveryTupleOnce checks the batch iterator against the
// sequential reference at several widths and engine configs: every tuple
// exactly once, every stride within one odometer row (shared prefix,
// consecutive innermost values), never wider than width.
func TestRunBatchVisitsEveryTupleOnce(t *testing.T) {
	cases := [][][]int64{
		{{0, 1, 2}, {0, 1, 2}},
		{{5}},
		{{0, 1}, {7}, {-1, 0, 1, 2}},
		{{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1}},
	}
	for _, values := range cases {
		k := len(values)
		for _, width := range []int{1, 2, 3, 8, 100} {
			for _, cfg := range []Config{{}, {Workers: 1}, {Workers: 3, Chunk: 1}, {Workers: 4, Chunk: 7}, {Workers: 16, Chunk: 2}} {
				strides := collectBatch(t, values, cfg, width)
				got := make(map[string]int)
				inner := values[k-1]
				for _, s := range strides {
					if len(s.last) == 0 || len(s.last) > width {
						t.Fatalf("width %d cfg %+v: stride of %d lanes", width, cfg, len(s.last))
					}
					// Lanes must be consecutive innermost-axis values.
					start := -1
					for i, v := range inner {
						if v == s.last[0] {
							start = i
							break
						}
					}
					if start < 0 || start+len(s.last) > len(inner) {
						t.Fatalf("width %d cfg %+v: stride %v not a row slice of %v", width, cfg, s.last, inner)
					}
					for i, v := range s.last {
						if inner[start+i] != v {
							t.Fatalf("width %d cfg %+v: stride %v not consecutive in %v", width, cfg, s.last, inner)
						}
						got[s.prefix+" "+key([]int64{v})]++
					}
				}
				wantTotal := len(sequential(values))
				gotTotal := 0
				for tuple, n := range got {
					gotTotal += n
					if n != 1 {
						t.Fatalf("width %d cfg %+v: tuple %s visited %d times", width, cfg, tuple, n)
					}
				}
				if gotTotal != wantTotal {
					t.Fatalf("width %d cfg %+v: visited %d tuples, want %d", width, cfg, gotTotal, wantTotal)
				}
			}
		}
	}
}

// TestRunBatchStrideShapes pins the exact stride decomposition on a single
// worker: strides stop at chunk boundaries and odometer carries, and the
// carry hint is k-1 exactly for strides continuing the same row within the
// same chunk (the stop digit of the odometer otherwise) — the contract the
// memoized batch runner builds on.
func TestRunBatchStrideShapes(t *testing.T) {
	values := [][]int64{{0, 1}, {0, 1, 2, 3, 4, 5, 6}}
	t.Run("row-spanning-chunk", func(t *testing.T) {
		// Chunk 5 splits row 0 at position 5 and row 1 at position 10: a
		// stride never crosses either cut, and the cuts (plus the carry
		// into row 1) all reset innerOnly.
		strides := collectBatch(t, values, Config{Workers: 1, Chunk: 5}, 8)
		want := []stride{
			{prefix: "[0]", last: []int64{0, 1, 2, 3, 4}, carry: 0},
			{prefix: "[0]", last: []int64{5, 6}, carry: 0},
			{prefix: "[1]", last: []int64{0, 1, 2}, carry: 0},
			{prefix: "[1]", last: []int64{3, 4, 5, 6}, carry: 0},
		}
		checkStrides(t, strides, want)
	})
	t.Run("width-splits-row", func(t *testing.T) {
		// One chunk covers everything: rows split only by width, and the
		// continuation strides report the full carry k-1.
		strides := collectBatch(t, values, Config{Workers: 1, Chunk: 100}, 3)
		want := []stride{
			{prefix: "[0]", last: []int64{0, 1, 2}, carry: 0},
			{prefix: "[0]", last: []int64{3, 4, 5}, carry: 1},
			{prefix: "[0]", last: []int64{6}, carry: 1},
			{prefix: "[1]", last: []int64{0, 1, 2}, carry: 0},
			{prefix: "[1]", last: []int64{3, 4, 5}, carry: 1},
			{prefix: "[1]", last: []int64{6}, carry: 1},
		}
		checkStrides(t, strides, want)
	})
	t.Run("width-beyond-row", func(t *testing.T) {
		// Width larger than the row: one stride per row, clipped to the
		// carry.
		strides := collectBatch(t, values, Config{Workers: 1, Chunk: 100}, 64)
		want := []stride{
			{prefix: "[0]", last: []int64{0, 1, 2, 3, 4, 5, 6}, carry: 0},
			{prefix: "[1]", last: []int64{0, 1, 2, 3, 4, 5, 6}, carry: 0},
		}
		checkStrides(t, strides, want)
	})
	t.Run("carry-depth-between-rows", func(t *testing.T) {
		// Three axes in one chunk: a row change that stops at the middle
		// digit reports carry 1, one that wraps through to the outermost
		// reports 0 — per-axis snapshots above the stop digit survive.
		deep := [][]int64{{0, 1}, {0, 1}, {0, 1, 2}}
		strides := collectBatch(t, deep, Config{Workers: 1, Chunk: 100}, 64)
		want := []stride{
			{prefix: "[0 0]", last: []int64{0, 1, 2}, carry: 0},
			{prefix: "[0 1]", last: []int64{0, 1, 2}, carry: 1},
			{prefix: "[1 0]", last: []int64{0, 1, 2}, carry: 0},
			{prefix: "[1 1]", last: []int64{0, 1, 2}, carry: 1},
		}
		checkStrides(t, strides, want)
	})
}

func checkStrides(t *testing.T, got, want []stride) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d strides %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i].prefix != want[i].prefix || got[i].carry != want[i].carry || key(got[i].last) != key(want[i].last) {
			t.Fatalf("stride %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRunBatchWidthOneMatchesHint checks that width-1 batching delivers
// exactly RunHint's tuple sequence and hints on a single worker — the
// degenerate batch is the scalar sweep.
func TestRunBatchWidthOneMatchesHint(t *testing.T) {
	values := [][]int64{{0, 1, 2}, {4, 5}, {7, 8, 9}}
	cfg := Config{Workers: 1, Chunk: 4}
	type visit struct {
		tuple string
		carry int
	}
	var fromHint, fromBatch []visit
	if err := RunHint(values, cfg, func(_ int, in []int64, carry int) error {
		fromHint = append(fromHint, visit{key(in), carry})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := RunBatch(values, cfg, 1, func(_ int, in []int64, last []int64, carry int) error {
		if len(last) != 1 || last[0] != in[len(in)-1] {
			t.Fatalf("width-1 stride: input %v, last %v", in, last)
		}
		fromBatch = append(fromBatch, visit{key(in), carry})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(fromHint) != len(fromBatch) {
		t.Fatalf("hint visited %d, batch visited %d", len(fromHint), len(fromBatch))
	}
	for i := range fromHint {
		if fromHint[i] != fromBatch[i] {
			t.Fatalf("visit %d: hint %+v, batch %+v", i, fromHint[i], fromBatch[i])
		}
	}
}

// TestRunBatchNullaryProduct delivers the zero-arity product's single
// empty tuple as one nil/nil call.
func TestRunBatchNullaryProduct(t *testing.T) {
	calls := 0
	if err := RunBatch(nil, Config{Workers: 3}, 8, func(_ int, in []int64, last []int64, carry int) error {
		calls++
		if in != nil || last != nil || carry != 0 {
			t.Fatalf("nullary call: input %v, last %v, carry %v", in, last, carry)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("nullary product: %d calls, want 1", calls)
	}
}

// TestRunBatchErrorStopsAndPropagates mirrors the scalar engine's error
// contract.
func TestRunBatchErrorStopsAndPropagates(t *testing.T) {
	boom := errors.New("boom")
	err := RunBatch([][]int64{{0, 1, 2}, {0, 1, 2}}, Config{Workers: 2, Chunk: 1}, 2,
		func(_ int, in []int64, _ []int64, _ int) error {
			if in[0] == 1 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
