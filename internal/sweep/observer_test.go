package sweep

import (
	"sync/atomic"
	"testing"
	"time"
)

// countObserver sums ChunkDone callbacks; safe for concurrent use.
type countObserver struct {
	chunks atomic.Int64
	tuples atomic.Int64
}

func (o *countObserver) ChunkDone(worker, tuples int, d time.Duration) {
	o.chunks.Add(1)
	o.tuples.Add(int64(tuples))
}

func observerDomain() [][]int64 {
	return [][]int64{
		{0, 1, 2, 3},
		{0, 1, 2, 3},
		{0, 1, 2, 3, 4, 5, 6, 7},
	}
}

func TestObserverSeesEveryTuple(t *testing.T) {
	dom := observerDomain()
	size := Size(dom)
	for _, workers := range []int{1, 4} {
		obs := &countObserver{}
		cfg := Config{Workers: workers, Chunk: 16, Observer: obs}
		err := Run(dom, cfg, func(worker int, input []int64) error { return nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := obs.tuples.Load(); got != int64(size) {
			t.Errorf("workers=%d: observer saw %d tuples, want %d", workers, got, size)
		}
		wantChunks := int64((size + 15) / 16)
		if got := obs.chunks.Load(); got != wantChunks {
			t.Errorf("workers=%d: observer saw %d chunks, want %d", workers, got, wantChunks)
		}
	}
}

func TestObserverShard(t *testing.T) {
	dom := observerDomain()
	obs := &countObserver{}
	cfg := Config{Workers: 2, Chunk: 8, Offset: 10, Count: 50, Observer: obs}
	if err := Run(dom, cfg, func(worker int, input []int64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := obs.tuples.Load(); got != 50 {
		t.Errorf("observer saw %d tuples, want 50", got)
	}
}

func TestObserverEmptyProduct(t *testing.T) {
	obs := &countObserver{}
	err := Run(nil, Config{Observer: obs}, func(worker int, input []int64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if obs.chunks.Load() != 1 || obs.tuples.Load() != 1 {
		t.Errorf("empty product observed %d chunks / %d tuples, want 1/1",
			obs.chunks.Load(), obs.tuples.Load())
	}
}
