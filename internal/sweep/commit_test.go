package sweep

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// collectCommits runs the sweep with a Commit hook and returns the commit
// sequence. The hook is called serialized, but guard with a mutex anyway so
// the race detector would catch a violation of that contract.
func collectCommits(t *testing.T, values [][]int64, cfg Config) []int {
	t.Helper()
	var mu sync.Mutex
	var commits []int
	cfg.Commit = func(done int) {
		mu.Lock()
		commits = append(commits, done)
		mu.Unlock()
	}
	err := Run(values, cfg, func(worker int, input []int64) error { return nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return commits
}

func checkMonotone(t *testing.T, commits []int, span int) {
	t.Helper()
	prev := 0
	for i, c := range commits {
		if c <= prev {
			t.Fatalf("commit %d = %d not strictly greater than previous %d (sequence %v)", i, c, prev, commits)
		}
		prev = c
	}
	if len(commits) == 0 || commits[len(commits)-1] != span {
		t.Fatalf("final commit != span %d: %v", span, commits)
	}
}

func TestCommitSingleWorker(t *testing.T) {
	values := Grid3(4, 4, 4)
	commits := collectCommits(t, values, Config{Workers: 1, Chunk: 7})
	checkMonotone(t, commits, 64)
	// One worker commits every chunk end in order: 7, 14, ..., 63, 64.
	for i, c := range commits[:len(commits)-1] {
		if want := (i + 1) * 7; c != want {
			t.Errorf("commit %d = %d, want %d", i, c, want)
		}
	}
}

func TestCommitMultiWorkerMonotoneContiguous(t *testing.T) {
	values := Grid3(5, 5, 5)
	for _, workers := range []int{2, 4, 8} {
		commits := collectCommits(t, values, Config{Workers: workers, Chunk: 3})
		checkMonotone(t, commits, 125)
		// Every commit is a chunk boundary of the range.
		for _, c := range commits {
			if c%3 != 0 && c != 125 {
				t.Errorf("workers=%d: commit %d not on a chunk boundary", workers, c)
			}
		}
	}
}

func TestCommitShardedRangeIsRangeRelative(t *testing.T) {
	values := Grid3(4, 4, 4)
	commits := collectCommits(t, values, Config{Workers: 3, Chunk: 5, Offset: 10, Count: 31})
	// Commits are relative to the range start, so they end at the span.
	checkMonotone(t, commits, 31)
}

func TestCommitEmptyProduct(t *testing.T) {
	commits := collectCommits(t, nil, Config{Workers: 2})
	if len(commits) != 1 || commits[0] != 1 {
		t.Fatalf("empty product commits = %v, want [1]", commits)
	}
}

func TestCommitStopsAtErrorPrefix(t *testing.T) {
	values := Grid3(4, 4, 4)
	boom := errors.New("boom")
	var mu sync.Mutex
	var commits []int
	seen := 0
	err := Run(values, Config{Workers: 1, Chunk: 4, Commit: func(done int) {
		mu.Lock()
		commits = append(commits, done)
		mu.Unlock()
	}}, func(worker int, input []int64) error {
		seen++
		if seen > 20 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	for _, c := range commits {
		if c > 20 {
			t.Errorf("commit %d covers the erroring chunk", c)
		}
	}
}

func TestCommitCancelledPrefixIsResumable(t *testing.T) {
	values := Grid3(6, 6, 6)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	last := 0
	visited := make(map[int]bool)
	err := RunContext(ctx, values, Config{Workers: 4, Chunk: 2, Commit: func(done int) {
		mu.Lock()
		if done > 40 {
			cancel()
		}
		last = done
		mu.Unlock()
	}}, func(worker int, input []int64) error {
		idx := int(input[0])*36 + int(input[1])*6 + int(input[2])
		mu.Lock()
		visited[idx] = true
		mu.Unlock()
		return nil
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// Everything below the committed prefix must really have been visited —
	// the property a crash-resume cursor depends on.
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < last; i++ {
		if !visited[i] {
			t.Fatalf("index %d below committed prefix %d was never visited", i, last)
		}
	}
}

// Grid3 builds a k-position domain where position i ranges over 0..ns[i]-1.
func Grid3(ns ...int) [][]int64 {
	out := make([][]int64, len(ns))
	for i, n := range ns {
		vs := make([]int64, n)
		for j := range vs {
			vs[j] = int64(j)
		}
		out[i] = vs
	}
	return out
}
