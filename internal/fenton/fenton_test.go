package fenton

import (
	"errors"
	"strings"
	"testing"

	"spm/internal/core"
	"spm/internal/lattice"
)

// asmLeak is the paper's negative-inference construction (Example 1
// continued): under halt-as-error semantics the machine emits the error
// message if and only if x (= r1, priv) is zero.
const asmLeak = `
    brz r1 ZERO
    jmp JOIN
ZERO: halt          // reached only when r1 == 0, with priv counter
JOIN: halt          // the join: counter mark discharged here
`

// asmCopy copies r1 into r0 by counting down: r0 ends equal to r1.
const asmCopy = `
LOOP: brz r1 DONE
      dec r1
      inc r0
      jmp LOOP
DONE: halt
`

// asmConst ignores its input and outputs 2.
const asmConst = `
    inc r0
    inc r0
    halt
`

func TestAssembleAndDisassemble(t *testing.T) {
	p := MustAssemble("copy", asmCopy)
	if p.NumRegs != 2 {
		t.Errorf("NumRegs = %d, want 2", p.NumRegs)
	}
	if len(p.Instrs) != 5 {
		t.Errorf("len(Instrs) = %d", len(p.Instrs))
	}
	dis := Disassemble(p)
	for _, want := range []string{"brz r1 4", "dec r1", "inc r0", "jmp 0", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "empty program"},
		{"no halt", "inc r0\n", "no halt"},
		{"bad op", "frob r0\nhalt\n", "unknown instruction"},
		{"bad reg", "inc x0\nhalt\n", "expected register"},
		{"bad label", "jmp NOWHERE\nhalt\n", "undefined label"},
		{"dup label", "A: halt\nA: halt\n", "duplicate label"},
		{"inc argc", "inc r0 r1\nhalt\n", "one register"},
		{"brz argc", "brz r0\nhalt\n", "register and target"},
		{"halt argc", "halt r0\n", "no operands"},
		{"target range", "jmp 99\nhalt\n", "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("bad", tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCopyProgram(t *testing.T) {
	p := MustAssemble("copy", asmCopy)
	for _, x := range []int64{0, 1, 5} {
		res, err := p.Run([]int64{0, x}, nil, HaltAsNoop, DefaultMaxSteps)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation || res.Output != x {
			t.Errorf("copy(%d) = %+v", x, res)
		}
	}
}

func TestSuppressedUpdatesArePartialComputations(t *testing.T) {
	// With r1 priv the loop's "inc r0" happens under a priv counter and
	// is suppressed (r0 is null): the machine outputs 0 — the result of a
	// partial computation, which is neither Q(a) nor a violation notice.
	// This is Jones & Lipton's criticism of Fenton's mechanism: E and F
	// are not disjoint.
	p := MustAssemble("copy", asmCopy)
	res, err := p.Run([]int64{0, 3}, []Mark{Null, Priv}, HaltAsNoop, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation || res.Output != 0 {
		t.Errorf("suppressed copy should output 0 silently: %+v", res)
	}
	// Formally: the data-mark machine fails the Jones–Lipton mechanism
	// property against the unprotected program Q.
	m, err := NewMechanism(p, 1, lattice.EmptySet, HaltAsNoop)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewMechanism(p, 1, lattice.NewIndexSet(1), HaltAsNoop) // all marks null: bare Q
	if err != nil {
		t.Fatal(err)
	}
	ok, w, err := core.VerifyMechanism(m, q, core.Grid(1, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Fenton's machine should fail the mechanism property (partial computations)")
	}
	if w == nil {
		t.Error("want a witness input")
	}
}

func TestMarkDischargedAtJoin(t *testing.T) {
	// Branching on priv data marks the counter, but after the join an
	// increment no longer taints its target.
	src := `
    brz r1 A
A:  inc r0        // at the join: counter is null again
    halt
`
	p := MustAssemble("join", src)
	res, err := p.Run([]int64{0, 1}, []Mark{Null, Priv}, HaltAsNoop, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation || res.Output != 1 {
		t.Errorf("post-join increment should be clean: %+v", res)
	}
}

func TestUpdateSuppressedInsideRegion(t *testing.T) {
	// An increment of a null register strictly inside a priv branch
	// region is suppressed on both paths, so the output never encodes the
	// branch outcome.
	src := `
    brz r1 SKIP
    inc r0        // inside the region: suppressed
SKIP: halt
`
	p := MustAssemble("inside", src)
	for _, x := range []int64{0, 1} {
		res, err := p.Run([]int64{0, x}, []Mark{Null, Priv}, HaltAsNoop, DefaultMaxSteps)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation || res.Output != 0 {
			t.Errorf("x=%d: %+v, want silent 0 (suppressed update)", x, res)
		}
	}
	// Without the priv mark the increment executes normally.
	res, err := p.Run([]int64{0, 1}, []Mark{Null, Null}, HaltAsNoop, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != 1 {
		t.Errorf("unmarked run = %+v, want 1", res)
	}
}

func TestHaltAsErrorLeak(t *testing.T) {
	// The paper's construction: the error message appears iff x == 0.
	p := MustAssemble("leak", asmLeak)
	res0, err := p.Run([]int64{0, 0}, []Mark{Null, Priv}, HaltAsError, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := p.Run([]int64{0, 1}, []Mark{Null, Priv}, HaltAsError, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if !res0.Violation || res0.Notice != NoticeHaltPriv {
		t.Errorf("x=0 should emit the halt error: %+v", res0)
	}
	if res1.Violation {
		t.Errorf("x≠0 should halt normally: %+v", res1)
	}
}

func TestHaltSemanticsSoundness(t *testing.T) {
	p := MustAssemble("leak", asmLeak)
	pol := core.NewAllow(1) // allow nothing: r1 is priv
	dom := core.Grid(1, 0, 1, 2)

	mErr, err := NewMechanism(p, 1, lattice.EmptySet, HaltAsError)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.CheckSoundness(mErr, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Error("halt-as-error must be unsound (negative inference)")
	}

	mNoop, err := NewMechanism(p, 1, lattice.EmptySet, HaltAsNoop)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = core.CheckSoundness(mNoop, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("halt-as-noop should be sound on this program: %s", rep)
	}
}

func TestFentonTimeNotHandled(t *testing.T) {
	// "As Fenton correctly points out, the observability postulate does
	// not hold for his programs": the copy loop's running time reveals
	// the priv input even though the output is withheld.
	p := MustAssemble("copy", asmCopy)
	m, err := NewMechanism(p, 1, lattice.EmptySet, HaltAsNoop)
	if err != nil {
		t.Fatal(err)
	}
	dom := core.Grid(1, 0, 1, 2, 3)
	pol := core.NewAllow(1)
	repValue, err := core.CheckSoundness(m, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !repValue.Sound {
		t.Errorf("value-only: %s", repValue)
	}
	repTime, err := core.CheckSoundness(m, pol, dom, core.ObserveValueAndTime)
	if err != nil {
		t.Fatal(err)
	}
	if repTime.Sound {
		t.Error("running time must leak the priv input on Fenton's machine")
	}
}

func TestFallOffEndUndefined(t *testing.T) {
	// "the semantics of the halt statement are undefined in case the halt
	// statement is the last program statement": when control proceeds
	// past the final instruction the machine reports the undefined case
	// as an execution error rather than inventing behaviour.
	src := `
    brz r1 SKIP
    halt          // priv counter: noop, falls through
SKIP: inc r0      // last instruction: control falls off the end
`
	p := MustAssemble("undef", src)
	for _, x := range []int64{0, 1} {
		_, err := p.Run([]int64{0, x}, []Mark{Null, Priv}, HaltAsNoop, DefaultMaxSteps)
		if !errors.Is(err, ErrUndefined) {
			t.Errorf("x=%d: err = %v, want ErrUndefined", x, err)
		}
	}
}

func TestStepLimit(t *testing.T) {
	src := `
LOOP: inc r0
      jmp LOOP
      halt
`
	p := MustAssemble("spin", src)
	_, err := p.Run(nil, nil, HaltAsNoop, 50)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestNestedPrivRegions(t *testing.T) {
	// Two nested priv branches; the inner discharge must not clear the
	// outer scope.
	src := `
    brz r1 J1
    brz r2 J2
J2: inc r0       // still inside r1's region
J1: halt
`
	p := MustAssemble("nested", src)
	// r1 = 1, r2 = 0: fall through on r1 (outer scope open), brz r2 jumps
	// to J2 (inner join). The inner discharge must leave the outer scope
	// active, so the increment is still suppressed.
	res, err := p.Run([]int64{0, 1, 0}, []Mark{Null, Priv, Priv}, HaltAsNoop, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation || res.Output != 0 {
		t.Errorf("inner join must not discharge outer scope: %+v, want suppressed 0", res)
	}
	// With both registers null the increment executes.
	res, err = p.Run([]int64{0, 1, 0}, []Mark{Null, Null, Null}, HaltAsNoop, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != 1 {
		t.Errorf("unmarked nested run = %+v, want 1", res)
	}
}

func TestMechanismErrors(t *testing.T) {
	p := MustAssemble("const", asmConst)
	if _, err := NewMechanism(p, 5, lattice.EmptySet, HaltAsNoop); err == nil {
		t.Error("arity exceeding registers accepted")
	}
	if _, err := NewMechanism(p, 0, lattice.NewIndexSet(1), HaltAsNoop); err == nil {
		t.Error("allow beyond arity accepted")
	}
	m, err := NewMechanism(p, 0, lattice.EmptySet, HaltAsNoop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]int64{1}); err == nil {
		t.Error("input arity mismatch accepted")
	}
	o, err := m.Run(nil)
	if err != nil || o.Value != 2 {
		t.Errorf("const run = %v, %v", o, err)
	}
	if !strings.Contains(m.Name(), "halt-as-noop") {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestNegativeInputsClamped(t *testing.T) {
	p := MustAssemble("copy", asmCopy)
	m, err := NewMechanism(p, 1, lattice.NewIndexSet(1), HaltAsNoop)
	if err != nil {
		t.Fatal(err)
	}
	o, err := m.Run([]int64{-5})
	if err != nil {
		t.Fatal(err)
	}
	if o.Value != 0 {
		t.Errorf("negative input should clamp to 0: %v", o)
	}
}

func TestMarkString(t *testing.T) {
	if Null.String() != "null" || Priv.String() != "priv" {
		t.Error("mark names")
	}
	if HaltAsNoop.String() != "halt-as-noop" || HaltAsError.String() != "halt-as-error" {
		t.Error("semantics names")
	}
}
