package fenton

import (
	"fmt"
	"strconv"
	"strings"

	"spm/internal/core"
	"spm/internal/lattice"
)

// Assemble parses data-mark assembler text. Syntax, one instruction per
// line, with // comments and optional "LABEL:" prefixes:
//
//	    inc r1
//	L:  brz r1 END      // if r1 == 0 goto END
//	    dec r1
//	    jmp L
//	END: halt
//
// Register names are r0..rN; r0 is the output register. Targets are labels
// or absolute instruction indices.
func Assemble(name, src string) (*Program, error) {
	type rawInstr struct {
		op     Opcode
		reg    int
		target string
		line   int
	}
	var raws []rawInstr
	labels := make(map[string]int)
	maxReg := -1

	lineNo := 0
	for _, line := range strings.Split(src, "\n") {
		lineNo++
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) prefix the instruction.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			lab := strings.TrimSpace(line[:i])
			if lab == "" || strings.ContainsAny(lab, " \t") {
				return nil, fmt.Errorf("fenton asm line %d: bad label %q", lineNo, lab)
			}
			if _, dup := labels[lab]; dup {
				return nil, fmt.Errorf("fenton asm line %d: duplicate label %q", lineNo, lab)
			}
			labels[lab] = len(raws)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue // label-only line
		}
		fields := strings.Fields(line)
		op := strings.ToLower(fields[0])
		argc := len(fields) - 1
		parseReg := func(s string) (int, error) {
			if !strings.HasPrefix(s, "r") && !strings.HasPrefix(s, "R") {
				return 0, fmt.Errorf("fenton asm line %d: expected register, got %q", lineNo, s)
			}
			v, err := strconv.Atoi(s[1:])
			if err != nil || v < 0 {
				return 0, fmt.Errorf("fenton asm line %d: bad register %q", lineNo, s)
			}
			if v > maxReg {
				maxReg = v
			}
			return v, nil
		}
		switch op {
		case "inc", "dec":
			if argc != 1 {
				return nil, fmt.Errorf("fenton asm line %d: %s takes one register", lineNo, op)
			}
			reg, err := parseReg(fields[1])
			if err != nil {
				return nil, err
			}
			o := OpInc
			if op == "dec" {
				o = OpDec
			}
			raws = append(raws, rawInstr{op: o, reg: reg, line: lineNo})
		case "brz":
			if argc != 2 {
				return nil, fmt.Errorf("fenton asm line %d: brz takes register and target", lineNo)
			}
			reg, err := parseReg(fields[1])
			if err != nil {
				return nil, err
			}
			raws = append(raws, rawInstr{op: OpBrz, reg: reg, target: fields[2], line: lineNo})
		case "jmp":
			if argc != 1 {
				return nil, fmt.Errorf("fenton asm line %d: jmp takes a target", lineNo)
			}
			raws = append(raws, rawInstr{op: OpJmp, target: fields[1], line: lineNo})
		case "halt":
			if argc != 0 {
				return nil, fmt.Errorf("fenton asm line %d: halt takes no operands", lineNo)
			}
			raws = append(raws, rawInstr{op: OpHalt, line: lineNo})
		default:
			return nil, fmt.Errorf("fenton asm line %d: unknown instruction %q", lineNo, op)
		}
	}

	p := &Program{Name: name, NumRegs: maxReg + 1}
	if p.NumRegs == 0 {
		p.NumRegs = 1 // r0 always exists as the output register
	}
	for _, rw := range raws {
		ins := Instr{Op: rw.op, Reg: rw.reg}
		if rw.op == OpBrz || rw.op == OpJmp {
			if idx, ok := labels[rw.target]; ok {
				ins.Target = idx
			} else if v, err := strconv.Atoi(rw.target); err == nil {
				ins.Target = v
			} else {
				return nil, fmt.Errorf("fenton asm line %d: undefined label %q", rw.line, rw.target)
			}
		}
		p.Instrs = append(p.Instrs, ins)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.computeJoins()
	return p, nil
}

// MustAssemble is Assemble but panics on error; for program literals.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the program as assembler text with absolute targets.
func Disassemble(p *Program) string {
	var b strings.Builder
	for i, ins := range p.Instrs {
		fmt.Fprintf(&b, "%3d: %s\n", i, ins)
	}
	return b.String()
}

// Mechanism wraps a data-mark program as a core.Mechanism of arity k: the
// mechanism's inputs load registers 1..k, and registers whose input index
// is NOT in allowed start with the priv mark — Fenton's encoding of
// allow(J) ("objects may only encode information from sources having the
// null attribute"). Register 0 is the output.
type Mechanism struct {
	P        *Program
	K        int
	Allowed  lattice.IndexSet
	Sem      HaltSemantics
	MaxSteps int64
}

// NewMechanism builds the mechanism; arity must leave room for the output
// register (k < NumRegs is not required — extra registers are scratch).
func NewMechanism(p *Program, arity int, allowed lattice.IndexSet, sem HaltSemantics) (*Mechanism, error) {
	if arity < 0 || arity+1 > p.NumRegs {
		return nil, fmt.Errorf("fenton: arity %d needs %d registers, program has %d", arity, arity+1, p.NumRegs)
	}
	if !allowed.SubsetOf(lattice.AllInputs(arity)) {
		return nil, fmt.Errorf("fenton: allow%v names inputs beyond arity %d", allowed, arity)
	}
	return &Mechanism{P: p, K: arity, Allowed: allowed, Sem: sem, MaxSteps: DefaultMaxSteps}, nil
}

// Name implements core.Mechanism.
func (m *Mechanism) Name() string {
	return fmt.Sprintf("%s[%s,allow%v]", m.P.Name, m.Sem, m.Allowed)
}

// Arity implements core.Mechanism.
func (m *Mechanism) Arity() int { return m.K }

// Run implements core.Mechanism. Negative inputs are clamped to zero: the
// machine's registers, like Minsky's, hold naturals.
func (m *Mechanism) Run(input []int64) (core.Outcome, error) {
	if len(input) != m.K {
		return core.Outcome{}, fmt.Errorf("fenton: mechanism %q: got %d inputs, want %d", m.Name(), len(input), m.K)
	}
	regs := make([]int64, m.K+1)
	marks := make([]Mark, m.K+1)
	for i, v := range input {
		if v < 0 {
			v = 0
		}
		regs[i+1] = v
		if !m.Allowed.Contains(i + 1) {
			marks[i+1] = Priv
		}
	}
	res, err := m.P.Run(regs, marks, m.Sem, m.MaxSteps)
	if err != nil {
		return core.Outcome{}, err
	}
	return core.Outcome{Value: res.Output, Steps: res.Steps, Violation: res.Violation, Notice: res.Notice}, nil
}
