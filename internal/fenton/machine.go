// Package fenton implements Fenton's data-mark machine (J. S. Fenton,
// "Memoryless subsystems", Computer Journal 17(2), 1974) — the running
// Example 1 of Jones & Lipton — as a Minsky-style register machine with
// security marks.
//
// Each register carries a fixed mark, null or priv, assigned before the
// run; the program counter carries a dynamic one. Branching on a priv
// register makes the program counter priv until control reaches the
// branch's join point (the immediate postdominator, computed statically,
// standing in for Fenton's structured return mechanism). While the counter
// is priv, an update to a null register is suppressed — the instruction
// has no effect — which is Fenton's memoryless-subsystem rule preventing
// implicit flows into low registers. The machine enforces
// allow(...)-style policies: the output register r0 is null, so it can
// never encode priv information.
//
// Note the consequence Jones & Lipton highlight: a suppressed update means
// the machine can return the result of a *partial computation* rather than
// Q's value or a violation notice — Fenton's "violation notices" F and the
// program outputs E are not disjoint, so in the Jones–Lipton sense the
// data-mark machine is not a protection mechanism at all (Example 1
// continued). TestSuppressedUpdatesArePartialComputations demonstrates
// this with core.VerifyMechanism.
//
// The interesting — and historically important — subtlety is the halt
// instruction, "if P = null then halt" (Example 1 continued, and
// Example 6's negative-inference discussion). What happens when P ≠ null?
// The machine implements the paper's two candidate interpretations:
//
//   - HaltAsNoop: the halt is skipped and execution proceeds to the next
//     instruction; undefined (an execution error) when the halt is the
//     last instruction.
//   - HaltAsError: a violation notice is emitted immediately. This
//     interpretation is UNSOUND: a program can emit the error message if
//     and only if a priv register is zero, so the presence or absence of
//     the message is a negative inference channel. The package's tests and
//     experiment E11 demonstrate the leak exactly as the paper describes.
package fenton

import (
	"errors"
	"fmt"
)

// Mark is a security attribute: null (public) or priv (possibly
// privileged).
type Mark uint8

// Marks.
const (
	Null Mark = iota
	Priv
)

// String renders the mark in Fenton's spelling.
func (m Mark) String() string {
	if m == Priv {
		return "priv"
	}
	return "null"
}

// Opcode is a machine instruction kind.
type Opcode uint8

// Instruction set: the two Minsky operations, a conditional branch, an
// unconditional jump, and halt.
const (
	OpInc  Opcode = iota // INC r: r += 1
	OpDec                // DEC r: r -= 1 (floor 0, Minsky-style)
	OpBrz                // BRZ r, target: if r == 0 jump, else fall through
	OpJmp                // JMP target
	OpHalt               // HALT (subject to the halt-semantics variant)
)

// String names the opcode.
func (op Opcode) String() string {
	switch op {
	case OpInc:
		return "inc"
	case OpDec:
		return "dec"
	case OpBrz:
		return "brz"
	case OpJmp:
		return "jmp"
	case OpHalt:
		return "halt"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(op))
	}
}

// Instr is a single machine instruction.
type Instr struct {
	Op     Opcode
	Reg    int // register operand for inc/dec/brz
	Target int // jump target for brz/jmp
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch i.Op {
	case OpInc, OpDec:
		return fmt.Sprintf("%s r%d", i.Op, i.Reg)
	case OpBrz:
		return fmt.Sprintf("brz r%d %d", i.Reg, i.Target)
	case OpJmp:
		return fmt.Sprintf("jmp %d", i.Target)
	default:
		return "halt"
	}
}

// HaltSemantics selects the interpretation of halt under a priv program
// counter.
type HaltSemantics uint8

// The two interpretations discussed in Example 1 continued.
const (
	// HaltAsNoop skips the halt and proceeds; sound, but undefined when
	// the halt is the final instruction.
	HaltAsNoop HaltSemantics = iota
	// HaltAsError emits a violation notice; unsound by negative
	// inference.
	HaltAsError
)

// String names the semantics.
func (h HaltSemantics) String() string {
	if h == HaltAsError {
		return "halt-as-error"
	}
	return "halt-as-noop"
}

// Program is an assembled data-mark program.
type Program struct {
	Name    string
	Instrs  []Instr
	NumRegs int
	// joins[i], for a BRZ at i, is the instruction index at which the
	// program counter's mark acquired by that branch is discharged
	// (the branch's immediate postdominator), or -1 when the paths never
	// rejoin before halting.
	joins []int
}

// Result is a machine run's outcome. Output is register 0's value.
type Result struct {
	Output    int64
	Steps     int64
	Violation bool
	Notice    string
}

// Errors returned by Run.
var (
	ErrStepLimit = errors.New("fenton: step limit exceeded")
	ErrUndefined = errors.New("fenton: halt-as-noop fell off the end of the program (semantics undefined)")
	ErrBadReg    = errors.New("fenton: register index out of range")
)

// DefaultMaxSteps bounds machine executions.
const DefaultMaxSteps = 1 << 20

// Notices issued by the machine.
const (
	// NoticeHaltPriv is the halt-as-error message: the program counter
	// was priv at a halt.
	NoticeHaltPriv = "halt attempted with priv program counter"
	// NoticeOutputPriv is issued when the output register is priv-marked
	// at a successful halt.
	NoticeOutputPriv = "output register carries priv mark"
)

// Run executes the program. regs holds the initial register values (padded
// with zeros to NumRegs); marks holds the registers' fixed marks (padded
// with Null). The machine mutates neither slice.
func (p *Program) Run(regs []int64, marks []Mark, sem HaltSemantics, maxSteps int64) (Result, error) {
	r := make([]int64, p.NumRegs)
	copy(r, regs)
	m := make([]Mark, p.NumRegs)
	copy(m, marks)
	if len(regs) > p.NumRegs || len(marks) > p.NumRegs {
		return Result{}, fmt.Errorf("%w: program has %d registers", ErrBadReg, p.NumRegs)
	}

	// Active priv scopes: join indices of branches on priv registers that
	// control is currently inside. The counter is priv while any scope is
	// open. Scopes with join -1 never close.
	var scopes []int
	pcMark := func() Mark {
		if len(scopes) > 0 {
			return Priv
		}
		return Null
	}
	var steps int64
	pc := 0
	for {
		if steps >= maxSteps {
			return Result{Steps: steps}, fmt.Errorf("%w: budget %d, program %q", ErrStepLimit, maxSteps, p.Name)
		}
		if pc < 0 || pc >= len(p.Instrs) {
			return Result{Steps: steps}, fmt.Errorf("%w (pc=%d)", ErrUndefined, pc)
		}
		// Discharge scopes whose join point control has reached.
		for len(scopes) > 0 && scopes[len(scopes)-1] == pc {
			scopes = scopes[:len(scopes)-1]
		}
		ins := p.Instrs[pc]
		steps++
		switch ins.Op {
		case OpInc:
			// Fenton's rule: an update executes only when the counter's
			// mark can flow to the register's (fixed) mark; otherwise the
			// instruction is suppressed.
			if pcMark() == Null || m[ins.Reg] == Priv {
				r[ins.Reg]++
			}
			pc++
		case OpDec:
			if pcMark() == Null || m[ins.Reg] == Priv {
				if r[ins.Reg] > 0 {
					r[ins.Reg]--
				}
			}
			pc++
		case OpBrz:
			if m[ins.Reg] == Priv {
				scopes = append(scopes, p.joins[pc])
			}
			if r[ins.Reg] == 0 {
				pc = ins.Target
			} else {
				pc++
			}
		case OpJmp:
			pc = ins.Target
		case OpHalt:
			if pcMark() == Priv {
				switch sem {
				case HaltAsError:
					return Result{Steps: steps, Violation: true, Notice: NoticeHaltPriv}, nil
				default: // HaltAsNoop
					pc++
					continue
				}
			}
			if m[0] == Priv {
				return Result{Steps: steps, Violation: true, Notice: NoticeOutputPriv}, nil
			}
			return Result{Output: r[0], Steps: steps}, nil
		default:
			return Result{Steps: steps}, fmt.Errorf("fenton: unknown opcode %d at %d", ins.Op, pc)
		}
	}
}

// computeJoins fills p.joins with the immediate postdominator of every BRZ
// instruction, via the standard iterative postdominance dataflow over the
// instruction graph augmented with a virtual exit.
func (p *Program) computeJoins() {
	n := len(p.Instrs)
	p.joins = make([]int, n)
	for i := range p.joins {
		p.joins[i] = -1
	}
	if n == 0 {
		return
	}
	succs := func(i int) []int {
		ins := p.Instrs[i]
		switch ins.Op {
		case OpBrz:
			out := []int{ins.Target}
			if i+1 < n {
				out = append(out, i+1)
			}
			return out
		case OpJmp:
			return []int{ins.Target}
		case OpHalt:
			// Under halt-as-noop a priv-counter halt falls through, so
			// the join analysis must assume the fall-through edge; for
			// halts that actually exit, an over-late join merely keeps
			// the counter priv longer, which is conservative.
			if i+1 < n {
				return []int{i + 1}
			}
			return nil
		default:
			if i+1 < n {
				return []int{i + 1}
			}
			return nil
		}
	}
	// pdom sets over n+1 slots (virtual exit is slot n).
	const wordBits = 64
	words := (n + 1 + wordBits - 1) / wordBits
	full := make([]uint64, words)
	for i := 0; i <= n; i++ {
		full[i/wordBits] |= 1 << uint(i%wordBits)
	}
	pdom := make([][]uint64, n)
	for i := 0; i < n; i++ {
		pdom[i] = make([]uint64, words)
		if len(succs(i)) == 0 || badTarget(p.Instrs[i], n) {
			pdom[i][i/wordBits] = 1 << uint(i%wordBits)
			pdom[i][n/wordBits] |= 1 << uint(n%wordBits)
		} else {
			copy(pdom[i], full)
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			ss := succs(i)
			if len(ss) == 0 || badTarget(p.Instrs[i], n) {
				continue
			}
			acc := make([]uint64, words)
			copy(acc, pdom[ss[0]])
			for _, s := range ss[1:] {
				for w := range acc {
					acc[w] &= pdom[s][w]
				}
			}
			acc[i/wordBits] |= 1 << uint(i%wordBits)
			for w := range acc {
				nv := pdom[i][w] & acc[w]
				if nv != pdom[i][w] {
					pdom[i][w] = nv
					changed = true
				}
			}
		}
	}
	has := func(set []uint64, j int) bool { return set[j/wordBits]&(1<<uint(j%wordBits)) != 0 }
	count := func(set []uint64) int {
		c := 0
		for _, w := range set {
			for ; w != 0; w &= w - 1 {
				c++
			}
		}
		return c
	}
	for i := 0; i < n; i++ {
		if p.Instrs[i].Op != OpBrz {
			continue
		}
		best, bestCount := -1, -1
		for j := 0; j < n; j++ {
			if j == i || !has(pdom[i], j) {
				continue
			}
			if c := count(pdom[j]); c > bestCount {
				bestCount = c
				best = j
			}
		}
		p.joins[i] = best // -1 means only the virtual exit postdominates
	}
}

// badTarget reports whether an instruction's jump target is outside the
// program; such instructions are treated as exits by the join analysis
// (Validate rejects them anyway).
func badTarget(ins Instr, n int) bool {
	switch ins.Op {
	case OpBrz, OpJmp:
		return ins.Target < 0 || ins.Target >= n
	}
	return false
}

// Validate checks that every register and jump target is in range and that
// the program contains a halt.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("fenton %q: empty program", p.Name)
	}
	halts := 0
	for i, ins := range p.Instrs {
		switch ins.Op {
		case OpInc, OpDec, OpBrz:
			if ins.Reg < 0 || ins.Reg >= p.NumRegs {
				return fmt.Errorf("fenton %q: instruction %d: register r%d out of range [0,%d)", p.Name, i, ins.Reg, p.NumRegs)
			}
		}
		switch ins.Op {
		case OpBrz, OpJmp:
			if ins.Target < 0 || ins.Target >= len(p.Instrs) {
				return fmt.Errorf("fenton %q: instruction %d: target %d out of range", p.Name, i, ins.Target)
			}
		}
		if ins.Op == OpHalt {
			halts++
		}
	}
	if halts == 0 {
		return fmt.Errorf("fenton %q: no halt instruction", p.Name)
	}
	return nil
}
