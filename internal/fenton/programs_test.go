package fenton

import (
	"testing"

	"spm/internal/core"
	"spm/internal/lattice"
)

// asmAdd computes r0 = r1 + r2 by two count-down loops.
const asmAdd = `
L1:   brz r1 L2
      dec r1
      inc r0
      jmp L1
L2:   brz r2 DONE
      dec r2
      inc r0
      jmp L2
DONE: halt
`

// asmMul computes r0 = r1 * r2 Minsky-style: repeatedly add r2 to r0,
// using r3 as a shuttle to restore r2 between outer iterations.
const asmMul = `
OUTER: brz r1 DONE
       dec r1
INNER: brz r2 RESTORE
       dec r2
       inc r0
       inc r3
       jmp INNER
RESTORE: brz r3 OUTER
       dec r3
       inc r2
       jmp RESTORE
DONE:  halt
`

// asmMax2 computes r0 = max(r1, r2) by decrementing both until one hits
// zero; r3/r4 hold working copies counted back into r0.
const asmMax2 = `
COPY1: brz r1 C2
       dec r1
       inc r3
       inc r4
       jmp COPY1
C2:    brz r2 PICK
       dec r2
       inc r5
       inc r6
       jmp C2
PICK:  brz r4 USE2
       brz r6 USE1
       dec r4
       dec r6
       jmp PICK
USE1:  brz r3 DONE
       dec r3
       inc r0
       jmp USE1
USE2:  brz r5 DONE
       dec r5
       inc r0
       jmp USE2
DONE:  halt
`

func TestMinskyAddition(t *testing.T) {
	p := MustAssemble("add", asmAdd)
	for a := int64(0); a <= 4; a++ {
		for b := int64(0); b <= 4; b++ {
			res, err := p.Run([]int64{0, a, b}, nil, HaltAsNoop, DefaultMaxSteps)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation || res.Output != a+b {
				t.Errorf("add(%d,%d) = %+v, want %d", a, b, res, a+b)
			}
		}
	}
}

func TestMinskyMultiplication(t *testing.T) {
	p := MustAssemble("mul", asmMul)
	for a := int64(0); a <= 4; a++ {
		for b := int64(0); b <= 4; b++ {
			res, err := p.Run([]int64{0, a, b}, nil, HaltAsNoop, DefaultMaxSteps)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation || res.Output != a*b {
				t.Errorf("mul(%d,%d) = %+v, want %d", a, b, res, a*b)
			}
		}
	}
}

func TestMinskyMax(t *testing.T) {
	p := MustAssemble("max2", asmMax2)
	for a := int64(0); a <= 3; a++ {
		for b := int64(0); b <= 3; b++ {
			res, err := p.Run([]int64{0, a, b}, nil, HaltAsNoop, DefaultMaxSteps)
			if err != nil {
				t.Fatal(err)
			}
			want := a
			if b > a {
				want = b
			}
			if res.Violation || res.Output != want {
				t.Errorf("max(%d,%d) = %+v, want %d", a, b, res, want)
			}
		}
	}
}

func TestAdditionWithOnePrivOperand(t *testing.T) {
	// r2 priv: the second loop's increments of the null r0 are suppressed,
	// so the machine silently outputs only r1 — a partial computation.
	p := MustAssemble("add", asmAdd)
	res, err := p.Run([]int64{0, 3, 2}, []Mark{Null, Null, Priv}, HaltAsNoop, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation || res.Output != 3 {
		t.Errorf("add with priv r2 = %+v, want silent 3", res)
	}
}

func TestAdditionMechanismSoundness(t *testing.T) {
	// The data-mark addition machine under allow(1): its value output
	// (the partial sum) never encodes the priv operand.
	p := MustAssemble("add", asmAdd)
	m, err := NewMechanism(p, 2, lattice.NewIndexSet(1), HaltAsNoop)
	if err != nil {
		t.Fatal(err)
	}
	pol := core.NewAllow(2, 1)
	dom := core.Grid(2, 0, 1, 2, 3)
	rep, err := core.CheckSoundness(m, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("data-mark addition leaks through its value: %s", rep)
	}
	// Time is another matter — Fenton's acknowledged gap.
	repT, err := core.CheckSoundness(m, pol, dom, core.ObserveValueAndTime)
	if err != nil {
		t.Fatal(err)
	}
	if repT.Sound {
		t.Error("running time should leak the priv operand")
	}
}

func TestMultiplicationStepsGrow(t *testing.T) {
	// Sanity on the cost model: multiplication steps grow with operands.
	p := MustAssemble("mul", asmMul)
	small, err := p.Run([]int64{0, 1, 1}, nil, HaltAsNoop, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	big, err := p.Run([]int64{0, 4, 4}, nil, HaltAsNoop, DefaultMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if small.Steps >= big.Steps {
		t.Errorf("steps: mul(1,1)=%d, mul(4,4)=%d", small.Steps, big.Steps)
	}
}
