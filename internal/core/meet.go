package core

import (
	"fmt"
)

// IntersectMech is the meet of mechanisms under the completeness order:
// it returns the real output only when every member does, and otherwise
// the first violating member's notice. Together with Union (the join,
// Theorem 1) this realises the paper's remark that, assuming a single
// violation notice, "the sound protection mechanisms form a lattice".
type IntersectMech struct {
	MechName string
	Members  []Mechanism
}

// Intersect forms the meet of one or more mechanisms of equal arity.
func Intersect(name string, members ...Mechanism) (*IntersectMech, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: intersection of zero mechanisms")
	}
	k := members[0].Arity()
	for _, m := range members[1:] {
		if m.Arity() != k {
			return nil, fmt.Errorf("core: intersection arity mismatch: %q has %d, %q has %d",
				members[0].Name(), k, m.Name(), m.Arity())
		}
	}
	return &IntersectMech{MechName: name, Members: members}, nil
}

// MustIntersect is Intersect but panics on error.
func MustIntersect(name string, members ...Mechanism) *IntersectMech {
	m, err := Intersect(name, members...)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Mechanism.
func (x *IntersectMech) Name() string { return x.MechName }

// Arity implements Mechanism.
func (x *IntersectMech) Arity() int { return x.Members[0].Arity() }

// Run implements Mechanism. All members are always consulted (constant
// consultation pattern), mirroring UnionMech, so the meet's running time
// does not encode which member vetoed.
func (x *IntersectMech) Run(input []int64) (Outcome, error) {
	var firstViolation *Outcome
	var last Outcome
	var total int64
	for _, m := range x.Members {
		o, err := m.Run(input)
		if err != nil {
			return Outcome{}, fmt.Errorf("core: intersection member %q: %w", m.Name(), err)
		}
		total += o.Steps
		if o.Violation && firstViolation == nil {
			v := o
			firstViolation = &v
		}
		last = o
	}
	if firstViolation != nil {
		firstViolation.Steps = total
		return *firstViolation, nil
	}
	last.Steps = total
	return last, nil
}
