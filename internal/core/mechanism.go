// Package core implements the basic security model of Section 2 of Jones &
// Lipton: programs as total functions, security policies as information
// filters, protection mechanisms as gatekeepers, and the relations between
// them — soundness, completeness, and the union operator of Theorem 1.
//
// The definitions are extensional, exactly as in the paper: a mechanism M
// for a program Q must satisfy M(d) = Q(d) or M(d) ∈ F (violation notices);
// M is sound for policy I iff M factors through I; M1 is as complete as M2
// iff M1 returns real output whenever M2 does. Over the finite domains used
// in tests and experiments these relations are decidable by enumeration,
// which is how CheckSoundness, VerifyMechanism, and Compare work. (Over
// unbounded domains they are undecidable — Theorem 4 — which is why the
// checkers take an explicit Domain.)
package core

import (
	"fmt"

	"spm/internal/flowchart"
)

// Outcome is the observable result of running a protection mechanism (or a
// bare program) on one input: either a value in E, or a violation notice in
// F. Steps carries the running time for use when the observability
// postulate includes time.
type Outcome struct {
	Value     int64
	Steps     int64
	Violation bool
	Notice    string
}

// String renders the outcome, using the paper's Λ for violation notices.
func (o Outcome) String() string {
	if o.Violation {
		if o.Notice == "" {
			return "Λ"
		}
		return "Λ[" + o.Notice + "]"
	}
	return fmt.Sprintf("%d", o.Value)
}

// Mechanism is a protection mechanism M : D1 × ... × Dk → E ∪ F. A bare
// program Q is itself a (possibly unsound) mechanism — the paper's
// Example 3 — so this interface also represents programs used as view
// functions.
type Mechanism interface {
	// Name identifies the mechanism in reports and experiment tables.
	Name() string
	// Arity returns k, the number of inputs.
	Arity() int
	// Run evaluates the mechanism. An error return means the evaluation
	// itself failed (step budget exhausted, bad arity) and is distinct
	// from a violation notice, which is a legitimate output in F.
	Run(input []int64) (Outcome, error)
}

// Func adapts a plain Go function into a Mechanism. It is used for
// programs whose natural expression is not a flowchart (the logon checker,
// the file system) and for hand-built mechanisms in tests.
type Func struct {
	MechName string
	K        int
	Fn       func(input []int64) Outcome
}

// NewFunc builds a Func mechanism.
func NewFunc(name string, arity int, fn func(input []int64) Outcome) *Func {
	return &Func{MechName: name, K: arity, Fn: fn}
}

// Name implements Mechanism.
func (f *Func) Name() string { return f.MechName }

// Arity implements Mechanism.
func (f *Func) Arity() int { return f.K }

// Run implements Mechanism.
func (f *Func) Run(input []int64) (Outcome, error) {
	if len(input) != f.K {
		return Outcome{}, fmt.Errorf("core: mechanism %q: got %d inputs, want %d", f.MechName, len(input), f.K)
	}
	return f.Fn(input), nil
}

// Program adapts a flowchart program into a Mechanism — the program "as its
// own protection mechanism" of Example 3. Violation-halt boxes in the
// flowchart become violation notices, so instrumented programs produced by
// the surveillance transformation are also wrapped with Program.
type Program struct {
	P        *flowchart.Program
	MaxSteps int64
}

// FromProgram wraps a flowchart program with the default step budget.
func FromProgram(p *flowchart.Program) *Program {
	return &Program{P: p, MaxSteps: flowchart.DefaultMaxSteps}
}

// Name implements Mechanism.
func (pm *Program) Name() string { return pm.P.Name }

// Arity implements Mechanism.
func (pm *Program) Arity() int { return pm.P.Arity() }

// Run implements Mechanism.
func (pm *Program) Run(input []int64) (Outcome, error) {
	res, err := pm.P.RunBudget(input, pm.MaxSteps, nil)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Value: res.Value, Steps: res.Steps, Violation: res.Violation, Notice: res.Notice}, nil
}

// Null is the trivial mechanism that always outputs the violation notice Λ
// — the paper's "pulling the plug" (Example 3). It is sound for every
// policy and minimally complete.
type Null struct {
	K int
}

// NewNull builds the null mechanism of the given arity.
func NewNull(arity int) *Null { return &Null{K: arity} }

// Name implements Mechanism.
func (n *Null) Name() string { return "null" }

// Arity implements Mechanism.
func (n *Null) Arity() int { return n.K }

// Run implements Mechanism. The single notice carries no information.
func (n *Null) Run(input []int64) (Outcome, error) {
	return Outcome{Violation: true, Notice: "plug pulled", Steps: 1}, nil
}

// UnionMech is M1 ∨ M2 ∨ ... : it outputs the real result if any member
// does, and otherwise the first member's violation notice. By Theorem 1 the
// union of sound mechanisms for the same (Q, I) is sound and at least as
// complete as every member.
type UnionMech struct {
	MechName string
	Members  []Mechanism
}

// Union forms the join of one or more mechanisms. All members must have the
// same arity.
func Union(name string, members ...Mechanism) (*UnionMech, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: union of zero mechanisms")
	}
	k := members[0].Arity()
	for _, m := range members[1:] {
		if m.Arity() != k {
			return nil, fmt.Errorf("core: union arity mismatch: %q has %d, %q has %d",
				members[0].Name(), k, m.Name(), m.Arity())
		}
	}
	return &UnionMech{MechName: name, Members: members}, nil
}

// MustUnion is Union but panics on error.
func MustUnion(name string, members ...Mechanism) *UnionMech {
	u, err := Union(name, members...)
	if err != nil {
		panic(err)
	}
	return u
}

// Name implements Mechanism.
func (u *UnionMech) Name() string { return u.MechName }

// Arity implements Mechanism.
func (u *UnionMech) Arity() int { return u.Members[0].Arity() }

// Run implements Mechanism. Per the paper's definition, M(a) = Q(a)
// provided some Mi(a) = Q(a), and M(a) = M1(a) otherwise. Since each
// member is a mechanism for the same Q, a non-violation member output *is*
// Q(a); we return the first one. The step count reported is the sum over
// members actually consulted, which keeps the union honest under the
// time-observable postulate (all members are always consulted).
func (u *UnionMech) Run(input []int64) (Outcome, error) {
	var first Outcome
	var chosen *Outcome
	var total int64
	for i, m := range u.Members {
		o, err := m.Run(input)
		if err != nil {
			return Outcome{}, fmt.Errorf("core: union member %q: %w", m.Name(), err)
		}
		total += o.Steps
		if i == 0 {
			first = o
		}
		if !o.Violation && chosen == nil {
			c := o
			chosen = &c
		}
	}
	if chosen != nil {
		chosen.Steps = total
		return *chosen, nil
	}
	first.Steps = total
	return first, nil
}

// Constant is the mechanism that always returns a fixed value; the
// degenerate sound mechanism for constant programs.
type Constant struct {
	MechName string
	K        int
	V        int64
}

// Name implements Mechanism.
func (c *Constant) Name() string { return c.MechName }

// Arity implements Mechanism.
func (c *Constant) Arity() int { return c.K }

// Run implements Mechanism.
func (c *Constant) Run(input []int64) (Outcome, error) {
	return Outcome{Value: c.V, Steps: 1}, nil
}
