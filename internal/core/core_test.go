package core

import (
	"strings"
	"testing"

	"spm/internal/flowchart"
	"spm/internal/lattice"
)

// ident2 is Q(x1,x2) = x2 as a mechanism.
func ident2() Mechanism {
	return NewFunc("Q:x2", 2, func(in []int64) Outcome {
		return Outcome{Value: in[1], Steps: 1}
	})
}

// const2 is Q(x1,x2) = 7.
func const2() Mechanism {
	return NewFunc("Q:7", 2, func(in []int64) Outcome {
		return Outcome{Value: 7, Steps: 1}
	})
}

func smallDom() Domain { return Grid(2, 0, 1, 2) }

func TestNullSoundForEveryPolicy(t *testing.T) {
	// Example 3: the mechanism that always outputs Λ is sound for any
	// security policy.
	null := NewNull(2)
	for _, set := range lattice.Subsets(2) {
		pol := NewAllowSet(2, set)
		rep, err := CheckSoundness(null, pol, smallDom(), ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Sound {
			t.Errorf("null mechanism unsound for %s: %s", pol.Name(), rep)
		}
	}
}

func TestProgramAsOwnMechanism(t *testing.T) {
	// Example 3 continued: a program as its own protection mechanism may
	// or may not be sound.
	q := ident2()
	// Unsound for allow(1): the output is exactly the disallowed input.
	rep, err := CheckSoundness(q, NewAllow(2, 1), smallDom(), ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Error("Q(x1,x2)=x2 should be unsound for allow(1)")
	}
	if rep.WitnessA == nil || rep.WitnessB == nil {
		t.Error("unsound report should carry witnesses")
	}
	if !strings.Contains(rep.String(), "UNSOUND") {
		t.Errorf("report string: %s", rep)
	}
	// Sound for allow(2) and allow(1,2).
	for _, pol := range []Policy{NewAllow(2, 2), NewAllow(2, 1, 2)} {
		rep, err := CheckSoundness(q, pol, smallDom(), ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Sound {
			t.Errorf("Q(x1,x2)=x2 should be sound for %s: %s", pol.Name(), rep)
		}
	}
	// A constant program is sound even for allow().
	rep, err = CheckSoundness(const2(), NewAllow(2), smallDom(), ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("constant program should be sound for allow(): %s", rep)
	}
}

func TestSoundnessUnderTimeObservation(t *testing.T) {
	// The Section 2 timing program: value constant, steps encode x1.
	q := NewFunc("timed", 1, func(in []int64) Outcome {
		return Outcome{Value: 1, Steps: 3 + 2*abs(in[0])}
	})
	dom := Grid(1, 0, 1, 2, 3)
	pol := NewAllow(1)
	repValue, err := CheckSoundness(q, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !repValue.Sound {
		t.Error("constant value should be sound when time is unobservable")
	}
	repTime, err := CheckSoundness(q, pol, dom, ObserveValueAndTime)
	if err != nil {
		t.Fatal(err)
	}
	if repTime.Sound {
		t.Error("running time leaks x; mechanism must be unsound under value+time")
	}
}

func TestLeakyViolationNoticesAreUnsound(t *testing.T) {
	// Example 4 (Denning, Rotenberg): a mechanism whose notice text
	// depends on disallowed data is unsound under the strict observation,
	// but looks sound if the user cannot read notice texts.
	m := NewFunc("leaky-notices", 1, func(in []int64) Outcome {
		if in[0] == 0 {
			return Outcome{Violation: true, Notice: "zero", Steps: 1}
		}
		return Outcome{Violation: true, Notice: "nonzero", Steps: 1}
	})
	pol := NewAllow(1)
	dom := Grid(1, 0, 1, 2)
	rep, err := CheckSoundness(m, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Error("distinct notices must make the mechanism unsound")
	}
	repCoarse, err := CheckSoundness(m, pol, dom, CoarseNotices(ObserveValue))
	if err != nil {
		t.Fatal(err)
	}
	if !repCoarse.Sound {
		t.Error("under coarse notices the mechanism should appear sound")
	}
}

func TestCoarseNoticesKeepsTime(t *testing.T) {
	m := NewFunc("timed-notice", 1, func(in []int64) Outcome {
		return Outcome{Violation: true, Notice: "x", Steps: in[0]}
	})
	rep, err := CheckSoundness(m, NewAllow(1), Grid(1, 1, 2), CoarseNotices(ObserveValueAndTime))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Error("coarse value+time observation must still see notice timing")
	}
}

func TestUnionTheorem(t *testing.T) {
	// Theorem 1. Build two sound mechanisms for Q(x1,x2)=x2 and
	// I=allow(2) that pass on different inputs.
	q := ident2()
	mA := NewFunc("passes-when-x2-even", 2, func(in []int64) Outcome {
		if in[1]%2 == 0 {
			return Outcome{Value: in[1], Steps: 1}
		}
		return Outcome{Violation: true, Notice: "A", Steps: 1}
	})
	mB := NewFunc("passes-when-x2-small", 2, func(in []int64) Outcome {
		if in[1] < 2 {
			return Outcome{Value: in[1], Steps: 1}
		}
		return Outcome{Violation: true, Notice: "B", Steps: 1}
	})
	pol := NewAllow(2, 2)
	dom := smallDom()
	u := MustUnion("A∨B", mA, mB)

	for _, m := range []Mechanism{mA, mB, u} {
		rep, err := CheckSoundness(m, pol, dom, CoarseNotices(ObserveValue))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Sound {
			t.Errorf("%s should be sound: %s", m.Name(), rep)
		}
		ok, w, err := VerifyMechanism(m, q, dom)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s violates the mechanism property at %v", m.Name(), w)
		}
	}
	// Union at least as complete as each member, strictly here.
	for _, m := range []Mechanism{mA, mB} {
		rep, err := Compare(u, m, dom)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Relation != MoreComplete {
			t.Errorf("union vs %s: %s, want more complete", m.Name(), rep)
		}
	}
	// Union picks the first member's notice when all fail: x2=3 fails both.
	dom3 := Domain{{0}, {3}}
	var got Outcome
	err := dom3.Enumerate(func(in []int64) error {
		o, err := u.Run(in)
		got = o
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Violation || got.Notice != "A" {
		t.Errorf("union failure outcome = %v, want first member's notice A", got)
	}
}

func TestUnionErrors(t *testing.T) {
	if _, err := Union("empty"); err == nil {
		t.Error("union of zero mechanisms accepted")
	}
	if _, err := Union("mismatch", NewNull(1), NewNull(2)); err == nil {
		t.Error("union with arity mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustUnion did not panic")
		}
	}()
	MustUnion("boom")
}

func TestCompareRelations(t *testing.T) {
	dom := Grid(1, 0, 1, 2, 3)
	pass := func(name string, f func(int64) bool) Mechanism {
		return NewFunc(name, 1, func(in []int64) Outcome {
			if f(in[0]) {
				return Outcome{Value: 1, Steps: 1}
			}
			return Outcome{Violation: true, Steps: 1}
		})
	}
	all := pass("all", func(int64) bool { return true })
	even := pass("even", func(v int64) bool { return v%2 == 0 })
	odd := pass("odd", func(v int64) bool { return v%2 == 1 })
	even2 := pass("even2", func(v int64) bool { return v%2 == 0 })

	cases := []struct {
		a, b Mechanism
		want Relation
	}{
		{all, even, MoreComplete},
		{even, all, LessComplete},
		{even, even2, Equal},
		{even, odd, Incomparable},
	}
	for _, tc := range cases {
		rep, err := Compare(tc.a, tc.b, dom)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Relation != tc.want {
			t.Errorf("Compare(%s,%s) = %s, want %s", tc.a.Name(), tc.b.Name(), rep.Relation, tc.want)
		}
	}
	// Report counters.
	rep, _ := Compare(all, even, dom)
	if rep.PassM1 != 4 || rep.PassM2 != 2 || rep.Checked != 4 {
		t.Errorf("counters: %+v", rep)
	}
	if rep.OnlyM1 == nil || rep.OnlyM2 != nil {
		t.Errorf("witnesses: %+v", rep)
	}
	if !strings.Contains(rep.String(), ">") {
		t.Errorf("String() = %s", rep.String())
	}
}

func TestVerifyMechanismCatchesLiars(t *testing.T) {
	q := ident2()
	liar := NewFunc("liar", 2, func(in []int64) Outcome {
		return Outcome{Value: in[1] + 1, Steps: 1} // not Q(a), not a notice
	})
	ok, w, err := VerifyMechanism(liar, q, smallDom())
	if err != nil {
		t.Fatal(err)
	}
	if ok || w == nil {
		t.Error("liar mechanism must fail VerifyMechanism with a witness")
	}
}

func TestMeasureLeak(t *testing.T) {
	// The logon shape: Q(secret, guess) = [secret == guess]. Policy
	// allows only the guess. Each query leaks at most 1 bit.
	q := NewFunc("eq", 2, func(in []int64) Outcome {
		if in[0] == in[1] {
			return Outcome{Value: 1, Steps: 1}
		}
		return Outcome{Value: 0, Steps: 1}
	})
	pol := NewAllow(2, 2)
	dom := Grid(2, 0, 1, 2, 3)
	rep, err := MeasureLeak(q, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxOutcomes != 2 {
		t.Errorf("MaxOutcomes = %d, want 2", rep.MaxOutcomes)
	}
	if rep.Bits != 1 {
		t.Errorf("Bits = %v, want 1", rep.Bits)
	}
	if rep.Classes != 4 {
		t.Errorf("Classes = %d, want 4", rep.Classes)
	}
	// A sound mechanism leaks zero bits.
	repNull, err := MeasureLeak(NewNull(2), pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if repNull.Bits != 0 || repNull.MaxOutcomes != 1 {
		t.Errorf("null leak = %+v", repNull)
	}
	if !strings.Contains(rep.String(), "bits/query") {
		t.Errorf("String() = %s", rep.String())
	}
}

func TestProgramMechanismAdapter(t *testing.T) {
	p := flowchart.MustParse("program add1\ninputs x\n y := x + 1\n halt\n")
	m := FromProgram(p)
	if m.Name() != "add1" || m.Arity() != 1 {
		t.Error("adapter metadata wrong")
	}
	o, err := m.Run([]int64{4})
	if err != nil {
		t.Fatal(err)
	}
	if o.Value != 5 || o.Violation {
		t.Errorf("Run = %v", o)
	}
	if _, err := m.Run([]int64{1, 2}); err == nil {
		t.Error("arity error not propagated")
	}
}

func TestAllowPolicy(t *testing.T) {
	pol := NewAllow(3, 1, 3)
	if pol.Name() != "allow(1,3)" {
		t.Errorf("Name = %q", pol.Name())
	}
	if pol.Arity() != 3 {
		t.Error("arity")
	}
	a := pol.View([]int64{10, 20, 30})
	b := pol.View([]int64{10, 99, 30})
	c := pol.View([]int64{11, 20, 30})
	if a != b {
		t.Error("views differing only on disallowed input must match")
	}
	if a == c {
		t.Error("views differing on allowed input must differ")
	}
	// View must not confuse (1, 23) with (12, 3).
	p2 := NewAllow(2, 1, 2)
	if p2.View([]int64{1, 23}) == p2.View([]int64{12, 3}) {
		t.Error("view encoding is ambiguous")
	}
}

func TestAllowPanicsOutOfArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAllow(1, 2) did not panic")
		}
	}()
	NewAllow(1, 2)
}

func TestContentPolicy(t *testing.T) {
	// Example 2 shape: file visible only when its directory says YES (1).
	pol := NewContent("dir-gated", 2, func(in []int64) string {
		if in[0] == 1 {
			return FormatInputs(in)
		}
		return FormatInputs([]int64{in[0], 0})
	})
	if pol.Name() != "dir-gated" || pol.Arity() != 2 {
		t.Error("metadata")
	}
	if pol.View([]int64{0, 5}) != pol.View([]int64{0, 9}) {
		t.Error("file hidden when directory says NO")
	}
	if pol.View([]int64{1, 5}) == pol.View([]int64{1, 9}) {
		t.Error("file visible when directory says YES")
	}
}

func TestIntegrityPolicy(t *testing.T) {
	pol := NewIntegrity(2, 1)
	if pol.Name() != "integrity(1)" {
		t.Errorf("Name = %q", pol.Name())
	}
	// Q copies the untrusted input: unsound for integrity(1).
	q := ident2()
	rep, err := CheckSoundness(q, pol, smallDom(), ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Error("output influenced by untrusted input must be unsound")
	}
}

func TestDomainEnumerate(t *testing.T) {
	d := Domain{{1, 2}, {10, 20, 30}}
	if d.Size() != 6 {
		t.Errorf("Size = %d", d.Size())
	}
	var count int
	var first, last []int64
	err := d.Enumerate(func(in []int64) error {
		if count == 0 {
			first = append([]int64(nil), in...)
		}
		last = append(last[:0], in...)
		count++
		return nil
	})
	if err != nil || count != 6 {
		t.Fatalf("count = %d, err = %v", count, err)
	}
	if first[0] != 1 || first[1] != 10 || last[0] != 2 || last[1] != 30 {
		t.Errorf("order: first %v last %v", first, last)
	}
	// Zero-arity domain enumerates the single empty tuple.
	var zero int
	if err := (Domain{}).Enumerate(func(in []int64) error { zero++; return nil }); err != nil {
		t.Fatal(err)
	}
	if zero != 1 {
		t.Errorf("zero-arity count = %d", zero)
	}
	// Empty value list short-circuits.
	var none int
	if err := (Domain{{}}).Enumerate(func(in []int64) error { none++; return nil }); err != nil {
		t.Fatal(err)
	}
	if none != 0 {
		t.Errorf("empty product count = %d", none)
	}
}

func TestRangeHelper(t *testing.T) {
	vs := Range(-1, 2)
	if len(vs) != 4 || vs[0] != -1 || vs[3] != 2 {
		t.Errorf("Range = %v", vs)
	}
	if Range(3, 2) != nil {
		t.Error("empty range should be nil")
	}
}

func TestConstantMechanism(t *testing.T) {
	c := &Constant{MechName: "const", K: 2, V: 9}
	o, err := c.Run([]int64{1, 2})
	if err != nil || o.Value != 9 || o.Violation {
		t.Errorf("constant = %v, %v", o, err)
	}
	rep, err := CheckSoundness(c, NewAllow(2), smallDom(), ObserveValueAndTime)
	if err != nil || !rep.Sound {
		t.Errorf("constant must be sound for allow() even with time: %v %v", rep, err)
	}
}

func TestArityMismatchErrors(t *testing.T) {
	if _, err := CheckSoundness(NewNull(2), NewAllow(1), Grid(2, 0), ObserveValue); err == nil {
		t.Error("CheckSoundness arity mismatch not reported")
	}
	if _, _, err := VerifyMechanism(NewNull(1), NewNull(2), Grid(1, 0)); err == nil {
		t.Error("VerifyMechanism arity mismatch not reported")
	}
	if _, err := Compare(NewNull(1), NewNull(2), Grid(1, 0)); err == nil {
		t.Error("Compare arity mismatch not reported")
	}
	if _, err := MeasureLeak(NewNull(2), NewAllow(1), Grid(2, 0), ObserveValue); err == nil {
		t.Error("MeasureLeak arity mismatch not reported")
	}
	if _, err := NewFunc("f", 2, nil).Run([]int64{1}); err == nil {
		t.Error("Func arity mismatch not reported")
	}
}

func TestOutcomeString(t *testing.T) {
	if got := (Outcome{Value: 3}).String(); got != "3" {
		t.Errorf("String = %q", got)
	}
	if got := (Outcome{Violation: true}).String(); got != "Λ" {
		t.Errorf("String = %q", got)
	}
	if got := (Outcome{Violation: true, Notice: "n"}).String(); got != "Λ[n]" {
		t.Errorf("String = %q", got)
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
