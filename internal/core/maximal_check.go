package core

import (
	"context"
	"fmt"

	"spm/internal/sweep"
)

// MaximalityReport is the result of CheckMaximality: whether a mechanism is
// extensionally the Theorem 2 maximal sound mechanism for (q, pol) over the
// domain, up to violation-notice equivalence.
type MaximalityReport struct {
	Mechanism   string
	Program     string
	Policy      string
	Observation string
	Maximal     bool
	Checked     int
	// On failure, an input where m deviates from the maximal mechanism and
	// which of the three ways it deviated.
	Witness []int64
	Reason  string
	// Classes is the per-class evidence table of a sharded run
	// (CheckMaximalityShard): maximality over a shard cannot be decided
	// locally because class constancy is a whole-domain property, so the
	// shard exports what it saw and check.Merge renders the verdict.
	Classes map[string]ClassSummary
}

// Reasons a mechanism can fail the maximality check.
const (
	// ReasonLeaks: m returns real output on a class where Q's observation
	// varies — m is not even sound there.
	ReasonLeaks = "passes on a class where Q's observation varies (unsound)"
	// ReasonWithholds: m issues Λ on a class where Q's observation is
	// constant — a sounder-than-necessary refusal, so m is not maximal.
	ReasonWithholds = "withholds output on a Q-constant class (not maximal)"
	// ReasonAlters: m passes but with a different observation than Q's —
	// it is not a mechanism for Q at that input.
	ReasonAlters = "returns an observation different from Q's"
)

// String summarises the report.
func (r MaximalityReport) String() string {
	if r.Maximal {
		return fmt.Sprintf("%s is MAXIMAL for %s/%s under %s (%d inputs checked)",
			r.Mechanism, r.Program, r.Policy, r.Observation, r.Checked)
	}
	return fmt.Sprintf("%s is NOT maximal for %s/%s under %s: at %s it %s",
		r.Mechanism, r.Program, r.Policy, r.Observation, FormatInputs(r.Witness), r.Reason)
}

// classTable records, per policy view, Q's first-seen observation and
// whether it stayed constant across the class.
type classTable map[string]*classState

type classState struct {
	obs      string
	constant bool
}

func (t classTable) add(view, rendered string) {
	if cs, ok := t[view]; ok {
		if cs.obs != rendered {
			cs.constant = false
		}
		return
	}
	t[view] = &classState{obs: rendered, constant: true}
}

// merge folds other into t; a class seen by both workers with different
// observations is non-constant even if each worker saw it as constant —
// the cross-shard case.
func (t classTable) merge(other classTable) {
	for view, ocs := range other {
		cs, ok := t[view]
		if !ok {
			t[view] = ocs
			continue
		}
		if !ocs.constant || cs.obs != ocs.obs {
			cs.constant = false
		}
	}
}

// maximalVerdict applies the maximality rule at one input: on a Q-constant
// class m must reproduce Q's observation (a violation if Q violates, the
// same rendered value otherwise); on a varying class m must issue Λ.
func maximalVerdict(classes classTable, view string, qo, mo Outcome, obs Observation) (ok bool, reason string) {
	cs := classes[view]
	if !cs.constant {
		if mo.Violation {
			return true, ""
		}
		return false, ReasonLeaks
	}
	if qo.Violation {
		if mo.Violation {
			return true, ""
		}
		return false, ReasonAlters
	}
	if mo.Violation {
		return false, ReasonWithholds
	}
	if obs.Render(mo) != obs.Render(qo) {
		return false, ReasonAlters
	}
	return true, ""
}

// CheckMaximality decides, by exhaustive enumeration of dom, whether m is
// the maximal sound protection mechanism for program q and policy pol under
// obs (Theorem 2), treating all violation notices as equivalent: m must
// release Q's observation exactly on the inputs whose policy class is
// Q-constant, and issue Λ everywhere else. CheckMaximalityParallel is the
// sharded equivalent.
func CheckMaximality(m, q Mechanism, pol Policy, dom Domain, obs Observation) (MaximalityReport, error) {
	rep, err := maximalityPreflight(m, q, pol, dom, obs)
	if err != nil {
		return rep, err
	}
	// Pass 1: which classes are Q-constant.
	classes := make(classTable)
	if err := dom.Enumerate(func(input []int64) error {
		qo, err := q.Run(input)
		if err != nil {
			return err
		}
		classes.add(pol.View(input), obs.Render(qo))
		return nil
	}); err != nil {
		return rep, err
	}
	// Pass 2: m must match the tabulated maximal mechanism everywhere.
	if err := dom.Enumerate(func(input []int64) error {
		qo, err := q.Run(input)
		if err != nil {
			return err
		}
		mo, err := m.Run(input)
		if err != nil {
			return err
		}
		rep.Checked++
		if ok, reason := maximalVerdict(classes, pol.View(input), qo, mo, obs); !ok && rep.Maximal {
			rep.Maximal = false
			rep.Witness = append([]int64(nil), input...)
			rep.Reason = reason
		}
		return nil
	}); err != nil {
		return rep, err
	}
	return rep, nil
}

// CheckMaximalityParallel is CheckMaximality with both enumeration passes
// run on the sweep engine: per-worker class tables merged between passes
// (so constancy is judged across chunks), then a sharded verdict pass.
//
// Deprecated: use spm/internal/check.Run with check.Maximality and
// check.WithWorkers; it adds cancellation and a unified verdict.
func CheckMaximalityParallel(m, q Mechanism, pol Policy, dom Domain, obs Observation, workers int) (MaximalityReport, error) {
	return CheckMaximalityContext(context.Background(), m, q, pol, dom, obs,
		CheckConfig{Config: sweep.Config{Workers: workers}})
}

// CheckMaximalitySweep is CheckMaximalityParallel with full engine control.
//
// Deprecated: use spm/internal/check.Run with check.Maximality; it adds
// cancellation and a unified verdict.
func CheckMaximalitySweep(m, q Mechanism, pol Policy, dom Domain, obs Observation, cfg sweep.Config) (MaximalityReport, error) {
	return CheckMaximalityContext(context.Background(), m, q, pol, dom, obs, CheckConfig{Config: cfg})
}

// CheckMaximalityContext is the engine behind every parallel maximality
// verdict — check.Run dispatches here, and the deprecated Parallel/Sweep
// wrappers shim onto it with a background context. Cancelling ctx stops
// whichever enumeration pass is running within one chunk and returns ctx's
// error with a partial report.
func CheckMaximalityContext(ctx context.Context, m, q Mechanism, pol Policy, dom Domain, obs Observation, cc CheckConfig) (MaximalityReport, error) {
	rep, err := maximalityPreflight(m, q, pol, dom, obs)
	if err != nil {
		return rep, err
	}
	workers := cc.ResolvedWorkers(sweep.Size(dom))

	// Pass 1: per-worker class tables over Q, merged into one.
	tables := make([]classTable, workers)
	for w := 0; w < workers; w++ {
		tables[w] = make(classTable)
	}
	if err := sweepOutcomes(ctx, dom, cc, []Mechanism{q}, func(w int, input []int64, outs []Outcome) error {
		tables[w].add(pol.View(input), obs.Render(outs[0]))
		return nil
	}); err != nil {
		return rep, err
	}
	classes := tables[0]
	for _, t := range tables[1:] {
		classes.merge(t)
	}

	// Pass 2: sharded verdicts against the merged table (read-only now).
	type shard struct {
		checked int
		witness []int64
		reason  string
	}
	shards := make([]shard, workers)
	if err := sweepOutcomes(ctx, dom, cc, []Mechanism{q, m}, func(w int, input []int64, outs []Outcome) error {
		s := &shards[w]
		qo, mo := outs[0], outs[1]
		s.checked++
		if ok, reason := maximalVerdict(classes, pol.View(input), qo, mo, obs); !ok && s.witness == nil {
			s.witness = append([]int64(nil), input...)
			s.reason = reason
		}
		return nil
	}); err != nil {
		return rep, err
	}
	for w := range shards {
		s := &shards[w]
		rep.Checked += s.checked
		if s.witness != nil && rep.Maximal {
			rep.Maximal = false
			rep.Witness = s.witness
			rep.Reason = s.reason
		}
	}
	return rep, nil
}

func maximalityPreflight(m, q Mechanism, pol Policy, dom Domain, obs Observation) (MaximalityReport, error) {
	rep := MaximalityReport{Mechanism: m.Name(), Program: q.Name(), Policy: pol.Name(), Observation: obs.ObsName, Maximal: true}
	if m.Arity() != q.Arity() || q.Arity() != pol.Arity() || len(dom) != q.Arity() {
		return rep, fmt.Errorf("core: arity mismatch: mechanism %d, program %d, policy %d, domain %d",
			m.Arity(), q.Arity(), pol.Arity(), len(dom))
	}
	return rep, nil
}
