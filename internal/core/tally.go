package core

import (
	"sync"
	"sync/atomic"

	"spm/internal/flowchart"
)

// StackDepthBuckets is the number of per-axis replay buckets the tally
// keeps: replays resumed from stack depth d land in bucket min(d,
// StackDepthBuckets-1), so domains deeper than the bucket count fold
// their tail into the last bucket instead of growing the counter set.
const StackDepthBuckets = 8

// ExecTally aggregates execution-tier counters across a sweep's workers:
// how often the prefix-memoized tier captured, replayed, or invalidated
// a snapshot, and how the batch tier's strides, lanes, and divergences
// went. It is the core-layer half of the observability seam — the
// policy-checking service samples Counts into its metrics registry.
//
// Layout follows the sweep engine's per-worker discipline: every runner
// registers its own ExecPart (one allocation at worker start), so the
// per-tuple hot path pays one uncontended atomic add and never shares a
// cache line between workers. Counts folds the parts at read time. A
// nil *ExecTally hands out nil parts, whose increments are no-ops — the
// disabled configuration costs a nil check per event.
type ExecTally struct {
	mu    sync.Mutex
	parts []*ExecPart
}

// Part registers and returns a new per-worker accumulator.
func (t *ExecTally) Part() *ExecPart {
	if t == nil {
		return nil
	}
	p := &ExecPart{}
	t.mu.Lock()
	t.parts = append(t.parts, p)
	t.mu.Unlock()
	return p
}

// ExecCounts is one consistent-enough snapshot of a tally (individual
// counters may lag an in-flight increment).
type ExecCounts struct {
	// MemoCaptures counts snapshot recordings (one per fresh odometer
	// row on the memoized tiers); MemoReplays counts executions resumed
	// from a snapshot (one per replayed tuple on the scalar tier, one
	// per replayed stride on the batch tier); MemoInvalid counts
	// replay attempts that found the snapshot unusable and fell back to
	// a full run.
	MemoCaptures int64
	MemoReplays  int64
	MemoInvalid  int64
	// BatchStrides counts lockstep executions, BatchLanes the tuples
	// they carried (lanes per stride = utilization of the configured
	// width), and BatchDiverged the lanes that left the lockstep on a
	// split decision and finished on the scalar engine.
	BatchStrides  int64
	BatchLanes    int64
	BatchDiverged int64
	// The snapshot-stack tier's answers by kind: StackFull counts
	// recordings from instruction zero (no valid per-axis capture),
	// StackReplays tails resumed from a captured stack entry,
	// StackConstants tuples answered by a constant suffix entry without
	// executing anything, and StackRowHits tuples answered from the
	// content-addressed row cache — the two pruning layers of the
	// subdomain pruner.
	StackFull      int64
	StackReplays   int64
	StackConstants int64
	StackRowHits   int64
	// StackReplayDepth splits StackReplays by the stack depth the tail
	// resumed from (deeper = shorter tail = cheaper); depths beyond the
	// bucket count accumulate in the last bucket.
	StackReplayDepth [StackDepthBuckets]int64
}

// Counts folds every registered part.
func (t *ExecTally) Counts() ExecCounts {
	var c ExecCounts
	if t == nil {
		return c
	}
	t.mu.Lock()
	parts := append([]*ExecPart(nil), t.parts...)
	t.mu.Unlock()
	for _, p := range parts {
		c.MemoCaptures += p.memoCaptures.Load()
		c.MemoReplays += p.memoReplays.Load()
		c.MemoInvalid += p.memoInvalid.Load()
		c.BatchStrides += p.batchStrides.Load()
		c.BatchLanes += p.batchLanes.Load()
		c.BatchDiverged += p.batchDiverged.Load()
		c.StackFull += p.stackFull.Load()
		c.StackReplays += p.stackReplays.Load()
		c.StackConstants += p.stackConstants.Load()
		c.StackRowHits += p.stackRowHits.Load()
		for d := range c.StackReplayDepth {
			c.StackReplayDepth[d] += p.stackReplayDepth[d].Load()
		}
	}
	return c
}

// ExecPart is one worker's accumulator; see ExecTally. Increment
// methods are nil-safe.
type ExecPart struct {
	memoCaptures     atomic.Int64
	memoReplays      atomic.Int64
	memoInvalid      atomic.Int64
	batchStrides     atomic.Int64
	batchLanes       atomic.Int64
	batchDiverged    atomic.Int64
	stackFull        atomic.Int64
	stackReplays     atomic.Int64
	stackConstants   atomic.Int64
	stackRowHits     atomic.Int64
	stackReplayDepth [StackDepthBuckets]atomic.Int64
}

func (p *ExecPart) memoCapture() {
	if p != nil {
		p.memoCaptures.Add(1)
	}
}

func (p *ExecPart) memoReplay() {
	if p != nil {
		p.memoReplays.Add(1)
	}
}

func (p *ExecPart) memoInvalidated() {
	if p != nil {
		p.memoInvalid.Add(1)
	}
}

// stackOp records one snapshot-stack answer by kind, bucketing replays by
// the resume depth.
func (p *ExecPart) stackOp(op flowchart.StackOp) {
	if p == nil {
		return
	}
	switch op.Kind {
	case flowchart.StackFull:
		p.stackFull.Add(1)
	case flowchart.StackReplay:
		p.stackReplays.Add(1)
		d := op.Depth
		if d < 0 {
			d = 0
		}
		if d >= StackDepthBuckets {
			d = StackDepthBuckets - 1
		}
		p.stackReplayDepth[d].Add(1)
	case flowchart.StackConstant:
		p.stackConstants.Add(1)
	case flowchart.StackRowHit:
		p.stackRowHits.Add(1)
	}
}

func (p *ExecPart) addBatch(strides, lanes, diverged int64) {
	if p != nil {
		p.batchStrides.Add(strides)
		p.batchLanes.Add(lanes)
		p.batchDiverged.Add(diverged)
	}
}
