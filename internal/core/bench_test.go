package core

import "testing"

func BenchmarkCheckSoundnessSequential(b *testing.B) {
	q := ident2()
	pol := NewAllow(2, 2)
	dom := Grid(2, Range(0, 15)...)
	b.ReportMetric(float64(dom.Size()), "inputs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CheckSoundness(q, pol, dom, ObserveValue); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckSoundnessParallel(b *testing.B) {
	q := ident2()
	pol := NewAllow(2, 2)
	dom := Grid(2, Range(0, 15)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CheckSoundnessParallel(q, pol, dom, ObserveValue, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaximalTabulation(b *testing.B) {
	q := ident2()
	pol := NewAllow(2, 2)
	dom := Grid(2, Range(0, 7)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Maximal(q, pol, dom, ObserveValue); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnionRun(b *testing.B) {
	a := passOn("A", func(v int64) bool { return v%2 == 0 })
	c := passOn("B", func(v int64) bool { return v < 2 })
	u := MustUnion("A∨B", a, c)
	in := []int64{0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasureLeak(b *testing.B) {
	q := ident2()
	pol := NewAllow(2, 1)
	dom := Grid(2, Range(0, 7)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeasureLeak(q, pol, dom, ObserveValue); err != nil {
			b.Fatal(err)
		}
	}
}
