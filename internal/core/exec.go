package core

import (
	"context"
	"errors"

	"spm/internal/flowchart"
	"spm/internal/sweep"
)

// BatchRunFunc evaluates a mechanism on one innermost-axis stride of the
// sweep: input is the first tuple of the stride, last the innermost
// coordinate of each of its len(last) lanes (last[0] equals input's last
// element), and out receives one Outcome per lane. carry carries the
// sweep engine's carry-depth hint (sweep.BatchFunc): the number of
// leading coordinates of input unchanged since the previous call on this
// worker, so carry == len(input)-1 means a snapshot recorded on the
// previous stride of the same row still applies and one capture feeds
// every lane, and a shallower carry tells the snapshot-stack tier which
// per-axis captures survive. The first error in lane order is returned —
// the same error a scalar enumeration of the stride would have hit first.
type BatchRunFunc func(input []int64, last []int64, carry int, out []Outcome) error

// BatchRunnerProvider lets a mechanism supply per-worker batch runners —
// the structure-of-arrays execution tier behind check.WithBatch. The
// executor consults it before falling back to compile-on-demand, so a
// compile-cache entry (internal/service) serves the batch tier directly.
// BatchRunners returns nil when the mechanism cannot execute in batches
// (the executor then falls back to the scalar tiers for every mechanism in
// the sweep, keeping enumeration uniform).
type BatchRunnerProvider interface {
	Mechanism
	// BatchRunners returns a factory producing one BatchRunFunc per sweep
	// worker, each owning its lanes, register file, and snapshot. memo
	// selects whether strides compose with prefix memoization (a snapshot
	// captured on the row's first tuple feeds the remaining lanes) or run
	// every batch from instruction zero — the check.WithMemo(false)
	// ablation applied to the batch tier. stack upgrades memoization to
	// the snapshot-stack tier: lane 0 of each fresh stride runs through a
	// per-worker flowchart.SnapshotStack (per-axis captures, constant
	// suffixes, row cache) and the remaining lanes resume from its
	// innermost capture. tally, when non-nil, receives each worker's
	// execution-tier counters (one ExecTally.Part per runner); nil
	// disables counting.
	BatchRunners(width int, memo, stack bool, tally *ExecTally) func() BatchRunFunc
}

// batchRunner is the per-worker batch executor over compiled code, the
// counterpart of stackRunner and snapshotRunner one tier up. With stack,
// lane 0 of each fresh stride runs through a per-worker snapshot stack —
// per-axis captures, constant-suffix pruning, and the row cache all apply
// to it — and the remaining lanes (and every continuation stride of the
// same row) resume in lockstep from the stack's innermost capture; a
// constant answer replicates to the whole stride without executing a
// lane. With memo alone, a fresh row runs its first lane on the
// single-axis snapshot recorder — capturing execution state at the first
// instruction that touches the innermost input — and every further lane
// of the row resumes from that capture in lockstep; without either, each
// stride runs whole from instruction zero, still amortizing instruction
// dispatch across lanes. Outcomes are exactly RunReuse's for every tuple.
func batchRunner(c *flowchart.Compiled, maxSteps int64, width int, memo, stack bool, part *ExecPart) BatchRunFunc {
	lanes, err := c.NewLanes(width)
	if err != nil {
		// Factories probe NewLanes before handing out runners; reaching
		// here means the probe was skipped, so fail loudly per call.
		return func([]int64, []int64, int, []Outcome) error { return err }
	}
	results := make([]flowchart.Result, width)
	var regs []int64
	var snap *flowchart.Snapshot
	var st *flowchart.SnapshotStack
	if memo && stack {
		st = c.NewSnapshotStack()
	} else if memo {
		regs = make([]int64, c.Slots())
		snap = c.NewSnapshot()
	}
	var prev flowchart.BatchStats
	runStack := func(input []int64, last []int64, carry int, res []flowchart.Result) error {
		n := len(last)
		k := len(input)
		if k > 0 && carry >= k-1 {
			// Continuation stride of the current row: the whole stride
			// resumes from the stack's innermost capture.
			err := c.RunBatchFromStack(lanes, st, last, maxSteps, res)
			if err == nil {
				part.stackOp(flowchart.StackOp{Kind: flowchart.StackReplay, Depth: k - 1})
				return nil
			}
			if !errors.Is(err, flowchart.ErrNoSnapshot) {
				return err
			}
			// No usable capture (recording run died before reaching the
			// innermost axis): fall through to the fresh path.
		}
		r0, op, err := st.Run(input, carry, maxSteps)
		if err != nil {
			return err
		}
		part.stackOp(op)
		res[0] = r0
		if n == 1 {
			return nil
		}
		if op.Kind == flowchart.StackConstant {
			// The innermost axis is never read on this path: every lane
			// halts identically, no lockstep execution needed.
			for i := 1; i < n; i++ {
				res[i] = r0
			}
			return nil
		}
		if err := c.RunBatchFromStack(lanes, st, last[1:], maxSteps, res[1:]); err != nil {
			if !errors.Is(err, flowchart.ErrNoSnapshot) {
				return err
			}
			return c.RunBatch(lanes, input, last[1:], maxSteps, res[1:])
		}
		part.stackOp(flowchart.StackOp{Kind: flowchart.StackReplay, Depth: k - 1})
		return nil
	}
	return func(input []int64, last []int64, carry int, out []Outcome) error {
		n := len(last)
		res := results[:n]
		innerOnly := len(input) > 0 && carry >= len(input)-1
		switch {
		case memo && stack:
			if err := runStack(input, last, carry, res); err != nil {
				return err
			}
		case memo && innerOnly && snap.Valid():
			if err := c.RunBatchFromSnapshot(lanes, snap, last, maxSteps, res); err != nil {
				return err
			}
			part.memoReplay()
		case memo:
			// Fresh row: lane 0 records the snapshot the rest of the row
			// replays from.
			r0, err := c.RunSnapshot(regs, input, maxSteps, snap)
			if err != nil {
				return err
			}
			part.memoCapture()
			res[0] = r0
			if n > 1 {
				if snap.Valid() {
					err = c.RunBatchFromSnapshot(lanes, snap, last[1:], maxSteps, res[1:])
					part.memoReplay()
				} else {
					err = c.RunBatch(lanes, input, last[1:], maxSteps, res[1:])
					part.memoInvalidated()
				}
				if err != nil {
					return err
				}
			}
		default:
			if err := c.RunBatch(lanes, input, last, maxSteps, res); err != nil {
				return err
			}
		}
		if part != nil {
			st := lanes.Stats
			part.addBatch(st.Strides-prev.Strides, st.Lanes-prev.Lanes, st.Diverged-prev.Diverged)
			prev = st
		}
		for i := range res {
			out[i] = Outcome{Value: res[i].Value, Steps: res[i].Steps, Violation: res[i].Violation, Notice: res[i].Notice}
		}
		return nil
	}
}

// batchFactory resolves the per-worker batch runner factory for m at the
// configured width, or nil when the batch tier does not apply: batching
// disabled or width ≤ 1, the interpreter forced, or m not backed by
// batch-compilable flowchart code.
func (cc CheckConfig) batchFactory(m Mechanism, width int) func() BatchRunFunc {
	if cc.Interpreted || width <= 1 {
		return nil
	}
	memo := !cc.NoMemo
	stack := !cc.NoStack
	if bp, ok := m.(BatchRunnerProvider); ok {
		return bp.BatchRunners(width, memo, stack, cc.Exec)
	}
	if pm, ok := m.(*Program); ok {
		if c, err := pm.P.Compile(); err == nil {
			if _, err := c.NewLanes(width); err == nil {
				maxSteps := pm.MaxSteps
				tally := cc.Exec
				return func() BatchRunFunc { return batchRunner(c, maxSteps, width, memo, stack, tally.Part()) }
			}
		}
	}
	return nil
}

// visitFunc is the per-tuple fold the checkers hand to sweepOutcomes:
// outs[i] is mechs[i]'s outcome on input. input is the engine's reused
// buffer (copy to retain); outs is reused between calls.
type visitFunc func(worker int, input []int64, outs []Outcome) error

// sweepOutcomes is the execution seam every checker enumerates through: it
// sweeps dom once, evaluates each mechanism in mechs on every tuple under
// the config's execution tier — interpreter, compiled scalar, compiled with
// prefix memoization, or the batch/columnar tier when cc.Batch asks for it
// and every mechanism supports it — and hands the outcomes to visit in
// exactly the order sweep.RunHintContext would deliver tuples. Tier choice
// is invisible to the fold: the differential suites pin all four tiers to
// byte-identical verdicts.
func sweepOutcomes(ctx context.Context, dom Domain, cc CheckConfig, mechs []Mechanism, visit visitFunc) error {
	workers := cc.ResolvedWorkers(sweep.Size(dom))
	if width := cc.Batch; width > 1 && len(dom) > 0 {
		factories := make([]func() BatchRunFunc, len(mechs))
		eligible := true
		for i, m := range mechs {
			if factories[i] = cc.batchFactory(m, width); factories[i] == nil {
				eligible = false
				break
			}
		}
		if eligible {
			return sweepOutcomesBatch(ctx, dom, cc, workers, width, factories, visit)
		}
	}
	factories := make([]func() HintRunFunc, len(mechs))
	for i, m := range mechs {
		factories[i] = cc.hintFactory(m)
	}
	type wstate struct {
		runs []HintRunFunc
		outs []Outcome
	}
	states := make([]wstate, workers)
	for w := range states {
		runs := make([]HintRunFunc, len(mechs))
		for i := range factories {
			runs[i] = factories[i]()
		}
		states[w] = wstate{runs: runs, outs: make([]Outcome, len(mechs))}
	}
	return sweep.RunHintContext(ctx, dom, cc.Config, func(w int, input []int64, carry int) error {
		s := &states[w]
		for i, run := range s.runs {
			o, err := run(input, carry)
			if err != nil {
				return err
			}
			s.outs[i] = o
		}
		return visit(w, input, s.outs)
	})
}

// sweepOutcomesBatch drives the batch tier: each worker executes every
// mechanism across the stride's lanes first (one instruction-dispatch
// stream per mechanism), then replays the stride tuple by tuple through
// visit, reconstructing each lane's full input by substituting its
// innermost coordinate — the per-tuple fold never knows batching happened.
func sweepOutcomesBatch(ctx context.Context, dom Domain, cc CheckConfig, workers, width int, factories []func() BatchRunFunc, visit visitFunc) error {
	type wstate struct {
		runs    []BatchRunFunc
		outCols [][]Outcome
		outs    []Outcome
	}
	states := make([]wstate, workers)
	for w := range states {
		runs := make([]BatchRunFunc, len(factories))
		cols := make([][]Outcome, len(factories))
		for i := range factories {
			runs[i] = factories[i]()
			cols[i] = make([]Outcome, width)
		}
		states[w] = wstate{runs: runs, outCols: cols, outs: make([]Outcome, len(factories))}
	}
	k := len(dom)
	return sweep.RunBatchContext(ctx, dom, cc.Config, width, func(w int, input []int64, last []int64, carry int) error {
		s := &states[w]
		n := len(last)
		for i, run := range s.runs {
			if err := run(input, last, carry, s.outCols[i][:n]); err != nil {
				return err
			}
		}
		for lane := 0; lane < n; lane++ {
			input[k-1] = last[lane]
			for i := range s.runs {
				s.outs[i] = s.outCols[i][lane]
			}
			if err := visit(w, input, s.outs); err != nil {
				return err
			}
		}
		return nil
	})
}
