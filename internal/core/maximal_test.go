package core

import (
	"strings"
	"testing"
)

func TestMaximalSoundAndDominates(t *testing.T) {
	// Q(x1,x2) = x2 with allow(2): Q itself is sound, so the maximal
	// mechanism must pass everywhere and agree with Q.
	q := ident2()
	pol := NewAllow(2, 2)
	dom := smallDom()
	m, err := Maximal(q, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckSoundness(m, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("maximal mechanism unsound: %s", rep)
	}
	pass, total := m.PassCount()
	if pass != total {
		t.Errorf("maximal should pass everywhere when Q is sound: %d/%d", pass, total)
	}
	cr, err := Compare(m, q, dom)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Relation != Equal {
		t.Errorf("maximal vs sound Q: %s, want equal", cr)
	}
}

func TestMaximalOnUnsoundProgram(t *testing.T) {
	// Q(x1,x2) = x2 with allow(1): every class has varying output (x2
	// sweeps the domain), so the maximal mechanism is Λ everywhere —
	// "pulling the plug" really is the best sound option here.
	q := ident2()
	pol := NewAllow(2, 1)
	dom := smallDom()
	m, err := Maximal(q, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	pass, total := m.PassCount()
	if pass != 0 || total != dom.Size() {
		t.Errorf("pass = %d/%d, want 0/%d", pass, total, dom.Size())
	}
	rep, err := CheckSoundness(m, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("maximal unsound: %s", rep)
	}
}

func TestMaximalPartiallyConstant(t *testing.T) {
	// Q passes information only when x1 = 0: Q(x1,x2) = x2 * sign(x1).
	// Under allow(1) the x1=0 class is constant (output 0), others vary.
	q := NewFunc("gated", 2, func(in []int64) Outcome {
		if in[0] == 0 {
			return Outcome{Value: 0, Steps: 1}
		}
		return Outcome{Value: in[1], Steps: 1}
	})
	pol := NewAllow(2, 1)
	dom := smallDom()
	m, err := Maximal(q, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	err = dom.Enumerate(func(in []int64) error {
		o, err := m.Run(in)
		if err != nil {
			return err
		}
		if (in[0] == 0) == o.Violation {
			t.Errorf("maximal%v = %v", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckSoundness(m, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("maximal unsound: %s", rep)
	}
}

func TestMaximalDominatesArbitrarySoundMechanisms(t *testing.T) {
	// Theorem 2 over the finite domain: any sound mechanism we can write
	// down is below the tabulated maximal one.
	q := ident2()
	pol := NewAllow(2, 2)
	dom := smallDom()
	m, err := Maximal(q, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	sound := []Mechanism{
		NewNull(2),
		NewFunc("even-only", 2, func(in []int64) Outcome {
			if in[1]%2 == 0 {
				return Outcome{Value: in[1], Steps: 1}
			}
			return Outcome{Violation: true, Steps: 1}
		}),
		q, // sound here
	}
	for _, s := range sound {
		cr, err := Compare(m, s, dom)
		if err != nil {
			t.Fatal(err)
		}
		if cr.Relation == LessComplete || cr.Relation == Incomparable {
			t.Errorf("maximal %s %s — Theorem 2 violated", cr.Relation, s.Name())
		}
	}
}

func TestMaximalUnderTimeObservation(t *testing.T) {
	// With observable time, a value-constant but time-varying class is
	// not constant, so the maximal mechanism for value+time refuses it.
	q := NewFunc("timed", 1, func(in []int64) Outcome {
		return Outcome{Value: 1, Steps: 1 + in[0]}
	})
	pol := NewAllow(1)
	dom := Grid(1, 0, 1, 2)
	mv, err := Maximal(q, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := Maximal(q, pol, dom, ObserveValueAndTime)
	if err != nil {
		t.Fatal(err)
	}
	pv, _ := mv.PassCount()
	pt, _ := mt.PassCount()
	if pv != 3 || pt != 0 {
		t.Errorf("value-maximal passes %d (want 3), time-maximal passes %d (want 0)", pv, pt)
	}
}

func TestMaximalOutsideDomain(t *testing.T) {
	q := ident2()
	m, err := Maximal(q, NewAllow(2, 2), smallDom(), ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]int64{99, 99}); err == nil {
		t.Error("out-of-domain input accepted")
	}
	if _, err := m.Run([]int64{1}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if !strings.Contains(m.Name(), "maximal") {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestMaximalArityMismatch(t *testing.T) {
	if _, err := Maximal(NewNull(2), NewAllow(1), Grid(2, 0), ObserveValue); err == nil {
		t.Error("arity mismatch accepted")
	}
}
