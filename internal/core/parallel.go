package core

import (
	"fmt"
	"runtime"
	"sync"
)

// CheckSoundnessParallel is CheckSoundness with the domain enumeration
// sharded across workers goroutines (runtime.NumCPU() when workers ≤ 0).
// Mechanisms must be safe for concurrent Run calls — every mechanism in
// this library is, because Run never mutates receiver state. The verdict
// is deterministic; when multiple counterexamples exist, the reported
// witness pair may differ from the sequential checker's.
func CheckSoundnessParallel(m Mechanism, pol Policy, dom Domain, obs Observation, workers int) (SoundnessReport, error) {
	rep := SoundnessReport{Mechanism: m.Name(), Policy: pol.Name(), Observation: obs.ObsName, Sound: true}
	if m.Arity() != pol.Arity() || len(dom) != m.Arity() {
		return rep, fmt.Errorf("core: arity mismatch: mechanism %d, policy %d, domain %d",
			m.Arity(), pol.Arity(), len(dom))
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 || len(dom) == 0 || dom.Size() < 2*workers {
		return CheckSoundness(m, pol, dom, obs)
	}

	// Shard on the first input position: each worker takes a round-robin
	// slice of its values and enumerates the rest of the product locally,
	// building a view → observation table and noting the first in-shard
	// conflict. A sequential merge then catches cross-shard conflicts
	// (views span shards whenever input 1 is disallowed by the policy).
	type entry struct {
		obs   string
		input []int64
	}
	type shardResult struct {
		views     map[string]entry
		conflictA *entry
		conflictB *entry
		checked   int
		err       error
	}
	results := make([]shardResult, workers)

	var wg sync.WaitGroup
	first := dom[0]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.views = make(map[string]entry)
			var mine []int64
			for i := w; i < len(first); i += workers {
				mine = append(mine, first[i])
			}
			if len(mine) == 0 {
				return
			}
			sub := make(Domain, len(dom))
			copy(sub, dom)
			sub[0] = mine
			res.err = sub.Enumerate(func(input []int64) error {
				o, err := m.Run(input)
				if err != nil {
					return err
				}
				res.checked++
				view := pol.View(input)
				rendered := obs.Render(o)
				prev, ok := res.views[view]
				if !ok {
					res.views[view] = entry{obs: rendered, input: append([]int64(nil), input...)}
					return nil
				}
				if prev.obs != rendered && res.conflictA == nil {
					a, b := prev, entry{obs: rendered, input: append([]int64(nil), input...)}
					res.conflictA, res.conflictB = &a, &b
				}
				return nil
			})
		}(w)
	}
	wg.Wait()

	merged := make(map[string]entry)
	for w := range results {
		res := &results[w]
		if res.err != nil {
			return rep, res.err
		}
		rep.Checked += res.checked
		if res.conflictA != nil && rep.Sound {
			rep.Sound = false
			rep.WitnessA = res.conflictA.input
			rep.WitnessB = res.conflictB.input
			rep.ObsA = res.conflictA.obs
			rep.ObsB = res.conflictB.obs
		}
		for view, e := range res.views {
			prev, ok := merged[view]
			if !ok {
				merged[view] = e
				continue
			}
			if prev.obs != e.obs && rep.Sound {
				rep.Sound = false
				rep.WitnessA = prev.input
				rep.WitnessB = e.input
				rep.ObsA = prev.obs
				rep.ObsB = e.obs
			}
		}
	}
	return rep, nil
}
