package core

import (
	"context"
	"errors"
	"fmt"

	"spm/internal/flowchart"
	"spm/internal/sweep"
)

// RunFunc evaluates a mechanism on one input. It is the unit the sweep
// engine schedules; see RunnerFactory.
type RunFunc func(input []int64) (Outcome, error)

// HintRunFunc is RunFunc with the sweep engine's carry-depth hint: carry
// is the number of leading input coordinates unchanged since the previous
// call on this worker (sweep.HintFunc). Compiled runners use the hint to
// resume from per-axis execution snapshots — flowchart.SnapshotStack.Run
// replays only the instructions after the first read of the shallowest
// changed input — instead of re-running the shared prefix on every tuple.
type HintRunFunc func(input []int64, carry int) (Outcome, error)

// ignoreHint adapts a plain runner for mechanisms with no prefix to
// memoize.
func ignoreHint(run RunFunc) HintRunFunc {
	return func(input []int64, _ int) (Outcome, error) { return run(input) }
}

// snapshotRunner returns the single-axis prefix-memoized per-worker
// runner over compiled code — the PR-5 tier, kept as the
// WithMemoStack(false) ablation and the baseline the snapshot-stack
// benchmarks compare against. A fresh row (carry below the innermost
// axis, or no usable snapshot) runs in full while recording a snapshot at
// the first instruction that touches the innermost input; every further
// tuple of the row replays only the program tail from that snapshot.
// Whenever the snapshot is unusable — the recording run exhausted its
// step budget or failed before the capture point — the runner falls back
// to full runs, so the outcome of every tuple is exactly RunReuse's.
func snapshotRunner(c *flowchart.Compiled, maxSteps int64, part *ExecPart) HintRunFunc {
	regs := make([]int64, c.Slots())
	snap := c.NewSnapshot()
	return func(input []int64, carry int) (Outcome, error) {
		var res flowchart.Result
		var err error
		if len(input) > 0 && carry >= len(input)-1 && snap.Valid() {
			res, err = c.RunFromSnapshot(regs, snap, input[len(input)-1], maxSteps)
			part.memoReplay()
			if errors.Is(err, flowchart.ErrNoSnapshot) {
				part.memoInvalidated()
				res, err = c.RunSnapshot(regs, input, maxSteps, snap)
				part.memoCapture()
			}
		} else {
			res, err = c.RunSnapshot(regs, input, maxSteps, snap)
			part.memoCapture()
		}
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Value: res.Value, Steps: res.Steps, Violation: res.Violation, Notice: res.Notice}, nil
	}
}

// stackRunner returns the snapshot-stack per-worker runner over compiled
// code — the default memoized tier. Each worker owns a
// flowchart.SnapshotStack: the sweep's carry hint invalidates exactly the
// stack suffix above the carried digit, the deepest surviving per-axis
// capture answers each tuple (replaying only the tail, skipping
// never-read axes wholesale via constant entries, and reusing tail
// results across rows whose captured state content-addresses equal), and
// anything unusable falls back to a full recording run — so the outcome
// of every tuple is exactly RunReuse's.
func stackRunner(c *flowchart.Compiled, maxSteps int64, part *ExecPart) HintRunFunc {
	stack := c.NewSnapshotStack()
	return func(input []int64, carry int) (Outcome, error) {
		res, op, err := stack.Run(input, carry, maxSteps)
		part.stackOp(op)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Value: res.Value, Steps: res.Steps, Violation: res.Violation, Notice: res.Notice}, nil
	}
}

// RunnerFactory returns a factory producing one RunFunc per sweep worker.
// A RunnerProvider (a CompiledMechanism out of the service's compile cache)
// supplies its own pre-compiled runners. Otherwise, when m wraps a
// flowchart program (directly, via Program) the program is lowered once
// with flowchart.Compile and every worker executes the slot-indexed form
// against a private register file — the compiled fast path that lets
// surveillance and high-water sweeps skip the interpreter's per-step map
// lookups. Any other mechanism falls back to m.Run, which is safe for
// concurrent use everywhere in this library (Run never mutates receiver
// state).
func RunnerFactory(m Mechanism) func() RunFunc {
	if rp, ok := m.(RunnerProvider); ok {
		return rp.Runners()
	}
	if pm, ok := m.(*Program); ok {
		if c, err := pm.P.Compile(); err == nil {
			maxSteps := pm.MaxSteps
			return func() RunFunc {
				regs := make([]int64, c.Slots())
				return func(input []int64) (Outcome, error) {
					res, err := c.RunReuse(regs, input, maxSteps)
					if err != nil {
						return Outcome{}, err
					}
					return Outcome{Value: res.Value, Steps: res.Steps, Violation: res.Violation, Notice: res.Notice}, nil
				}
			}
		}
	}
	return func() RunFunc { return m.Run }
}

// CheckConfig tunes the context-aware checkers: the embedded sweep.Config
// controls parallelism, chunking, the shard range, and the progress
// cursor; Interpreted disables the compiled fast path so every tuple runs
// through Mechanism.Run (the ablation knob behind
// check.WithCompiled(false)); NoMemo keeps the compiled fast path but
// disables prefix memoization, so every tuple replays from instruction
// zero (the ablation knob behind check.WithMemo(false), and the baseline
// the prefix benchmarks compare against); NoStack keeps single-axis
// prefix memoization but disables the snapshot-stack tier — per-axis
// captures, constant-suffix pruning, and the content-addressed row cache
// (the ablation knob behind check.WithMemoStack(false), and the baseline
// the snapshot-stack benchmarks compare against); CollectViews asks
// CheckSoundnessContext to export its merged per-class observation table
// so a shard verdict can be folded with its siblings by check.Merge.
// Batch > 1 selects the batch/columnar execution tier (the knob behind
// check.WithBatch): each worker executes strides of up to Batch
// innermost-axis tuples in lockstep over structure-of-arrays register
// columns, falling back to the scalar tiers when a mechanism is not
// batch-compilable. Verdicts are identical across all tiers. Exec, when
// non-nil, receives execution-tier counters (memo captures/replays,
// batch strides/lanes/divergence — see ExecTally); nil keeps the hot
// paths entirely unobserved.
type CheckConfig struct {
	sweep.Config
	Interpreted  bool
	NoMemo       bool
	NoStack      bool
	CollectViews bool
	Batch        int
	Exec         *ExecTally
}

// hintFactory resolves the per-worker hinted runner factory for m under
// the config: the snapshot-stack compiled path when m is flowchart-backed
// (or supplies its own hinted runners), the single-axis snapshot path
// under NoStack, plain runners otherwise — the hint is simply ignored by
// mechanisms with no prefix to reuse.
func (cc CheckConfig) hintFactory(m Mechanism) func() HintRunFunc {
	if cc.Interpreted {
		return func() HintRunFunc { return ignoreHint(m.Run) }
	}
	if !cc.NoMemo {
		stack := !cc.NoStack
		if hp, ok := m.(HintRunnerProvider); ok {
			return hp.HintRunners(stack, cc.Exec)
		}
		if pm, ok := m.(*Program); ok {
			if c, err := pm.P.Compile(); err == nil {
				maxSteps := pm.MaxSteps
				tally := cc.Exec
				if stack {
					return func() HintRunFunc { return stackRunner(c, maxSteps, tally.Part()) }
				}
				return func() HintRunFunc { return snapshotRunner(c, maxSteps, tally.Part()) }
			}
		}
	}
	base := RunnerFactory(m)
	return func() HintRunFunc { return ignoreHint(base()) }
}

// viewEntry is one policy class's first-seen observation and witness input.
type viewEntry struct {
	obs   string
	input []int64
}

// CheckSoundnessParallel is CheckSoundness with the domain enumeration run
// on the sweep engine: workers goroutines (runtime.NumCPU() when ≤ 0)
// pulling chunks from a shared cursor, per-worker view tables merged at the
// end. The verdict is deterministic; when multiple counterexamples exist,
// the reported witness pair may differ from the sequential checker's.
//
// Deprecated: use spm/internal/check.Run with check.Soundness and
// check.WithWorkers; it adds cancellation and a unified verdict.
func CheckSoundnessParallel(m Mechanism, pol Policy, dom Domain, obs Observation, workers int) (SoundnessReport, error) {
	return CheckSoundnessContext(context.Background(), m, pol, dom, obs,
		CheckConfig{Config: sweep.Config{Workers: workers}})
}

// CheckSoundnessSweep is CheckSoundnessParallel with full engine control
// (worker count and chunk size).
//
// Deprecated: use spm/internal/check.Run with check.Soundness; it adds
// cancellation and a unified verdict.
func CheckSoundnessSweep(m Mechanism, pol Policy, dom Domain, obs Observation, cfg sweep.Config) (SoundnessReport, error) {
	return CheckSoundnessContext(context.Background(), m, pol, dom, obs, CheckConfig{Config: cfg})
}

// CheckSoundnessContext is the engine behind every parallel soundness
// verdict — check.Run dispatches here, and the deprecated Parallel/Sweep
// wrappers shim onto it with a background context. Cancelling ctx stops the
// sweep within one chunk and returns ctx's error with a partial report.
func CheckSoundnessContext(ctx context.Context, m Mechanism, pol Policy, dom Domain, obs Observation, cc CheckConfig) (SoundnessReport, error) {
	rep := SoundnessReport{Mechanism: m.Name(), Policy: pol.Name(), Observation: obs.ObsName, Sound: true}
	if m.Arity() != pol.Arity() || len(dom) != m.Arity() {
		return rep, fmt.Errorf("core: arity mismatch: mechanism %d, policy %d, domain %d",
			m.Arity(), pol.Arity(), len(dom))
	}

	// Each worker builds a view → observation table and notes the first
	// conflict it sees; the merge then catches conflicts whose two inputs
	// were visited by different workers (views span chunks whenever the
	// policy ignores part of the input).
	type shard struct {
		views     map[string]viewEntry
		conflictA *viewEntry
		conflictB *viewEntry
		checked   int
	}
	workers := cc.ResolvedWorkers(sweep.Size(dom))
	shards := make([]shard, workers)
	for w := range shards {
		shards[w] = shard{views: make(map[string]viewEntry)}
	}
	err := sweepOutcomes(ctx, dom, cc, []Mechanism{m}, func(w int, input []int64, outs []Outcome) error {
		s := &shards[w]
		o := outs[0]
		s.checked++
		view := pol.View(input)
		rendered := obs.Render(o)
		prev, ok := s.views[view]
		if !ok {
			s.views[view] = viewEntry{obs: rendered, input: append([]int64(nil), input...)}
			return nil
		}
		if prev.obs != rendered && s.conflictA == nil {
			b := viewEntry{obs: rendered, input: append([]int64(nil), input...)}
			s.conflictA, s.conflictB = &prev, &b
		}
		return nil
	})
	if err != nil {
		return rep, err
	}

	merged := make(map[string]viewEntry)
	for w := range shards {
		s := &shards[w]
		rep.Checked += s.checked
		if s.conflictA != nil && rep.Sound {
			rep.Sound = false
			rep.WitnessA, rep.WitnessB = s.conflictA.input, s.conflictB.input
			rep.ObsA, rep.ObsB = s.conflictA.obs, s.conflictB.obs
		}
		for view, e := range s.views {
			prev, ok := merged[view]
			if !ok {
				merged[view] = e
				continue
			}
			if prev.obs != e.obs && rep.Sound {
				rep.Sound = false
				rep.WitnessA, rep.WitnessB = prev.input, e.input
				rep.ObsA, rep.ObsB = prev.obs, e.obs
			}
		}
	}
	if cc.CollectViews {
		rep.Views = make(map[string]ViewObs, len(merged))
		for view, e := range merged {
			rep.Views[view] = ViewObs{Obs: e.obs, Witness: e.input}
		}
	}
	return rep, nil
}

// PassCountParallel counts the inputs in dom on which m returns real output
// (no violation notice) — the utility column of the experiment tables —
// using the sweep engine and the compiled fast path.
//
// Deprecated: use spm/internal/check.Run with check.PassCount; it adds
// cancellation and a unified verdict.
func PassCountParallel(m Mechanism, dom Domain, workers int) (int, error) {
	return PassCountContext(context.Background(), m, dom,
		CheckConfig{Config: sweep.Config{Workers: workers}})
}

// PassCountSweep is PassCountParallel with full engine control.
//
// Deprecated: use spm/internal/check.Run with check.PassCount; it adds
// cancellation and a unified verdict.
func PassCountSweep(m Mechanism, dom Domain, cfg sweep.Config) (int, error) {
	return PassCountContext(context.Background(), m, dom, CheckConfig{Config: cfg})
}

// PassCountContext is the engine behind every pass count — check.Run
// dispatches here. Cancelling ctx stops the sweep within one chunk and
// returns ctx's error.
func PassCountContext(ctx context.Context, m Mechanism, dom Domain, cc CheckConfig) (int, error) {
	if len(dom) != m.Arity() {
		return 0, fmt.Errorf("core: arity mismatch: mechanism %d, domain %d", m.Arity(), len(dom))
	}
	workers := cc.ResolvedWorkers(sweep.Size(dom))
	counts := make([]int, workers)
	err := sweepOutcomes(ctx, dom, cc, []Mechanism{m}, func(w int, input []int64, outs []Outcome) error {
		if !outs[0].Violation {
			counts[w]++
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}
