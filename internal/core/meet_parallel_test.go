package core

import (
	"fmt"
	"testing"
)

// passOn builds a sound mechanism for Q(x1,x2) = x2 / allow(2) that passes
// exactly on inputs where pred(x2) holds.
func passOn(name string, pred func(int64) bool) Mechanism {
	return NewFunc(name, 2, func(in []int64) Outcome {
		if pred(in[1]) {
			return Outcome{Value: in[1], Steps: 1}
		}
		return Outcome{Violation: true, Notice: name, Steps: 1}
	})
}

func TestIntersectBasics(t *testing.T) {
	even := passOn("even", func(v int64) bool { return v%2 == 0 })
	small := passOn("small", func(v int64) bool { return v < 2 })
	x := MustIntersect("even∧small", even, small)
	dom := smallDom()
	// Passes exactly where both pass: x2 = 0.
	err := dom.Enumerate(func(in []int64) error {
		o, err := x.Run(in)
		if err != nil {
			return err
		}
		want := in[1] == 0
		if want != !o.Violation {
			t.Errorf("meet%v = %v", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Notice comes from the first violating member.
	o, err := x.Run([]int64{0, 1}) // even fails first
	if err != nil {
		t.Fatal(err)
	}
	if o.Notice != "even" {
		t.Errorf("notice = %q, want first violator's", o.Notice)
	}
}

func TestIntersectErrors(t *testing.T) {
	if _, err := Intersect("none"); err == nil {
		t.Error("empty intersection accepted")
	}
	if _, err := Intersect("mix", NewNull(1), NewNull(2)); err == nil {
		t.Error("arity mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIntersect did not panic")
		}
	}()
	MustIntersect("boom")
}

// TestSoundMechanismLattice verifies the paper's remark that, with a
// single violation notice, the sound protection mechanisms for (Q, I)
// form a lattice: union is the join and intersection is the meet, both
// sound, with the expected order relations.
func TestSoundMechanismLattice(t *testing.T) {
	pol := NewAllow(2, 2)
	dom := smallDom()
	obs := CoarseNotices(ObserveValue)
	a := passOn("A", func(v int64) bool { return v%2 == 0 })
	b := passOn("B", func(v int64) bool { return v < 2 })
	join := MustUnion("A∨B", a, b)
	meet := MustIntersect("A∧B", a, b)

	for _, m := range []Mechanism{a, b, join, meet} {
		rep, err := CheckSoundness(m, pol, dom, obs)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Sound {
			t.Errorf("%s unsound: %s", m.Name(), rep)
		}
	}
	// meet ≤ a, b ≤ join.
	for _, m := range []Mechanism{a, b} {
		up, err := Compare(join, m, dom)
		if err != nil {
			t.Fatal(err)
		}
		if up.Relation == LessComplete || up.Relation == Incomparable {
			t.Errorf("join %s %s", up.Relation, m.Name())
		}
		down, err := Compare(meet, m, dom)
		if err != nil {
			t.Fatal(err)
		}
		if down.Relation == MoreComplete || down.Relation == Incomparable {
			t.Errorf("meet %s %s", down.Relation, m.Name())
		}
	}
	// Absorption: a ∨ (a ∧ b) ≡ a and a ∧ (a ∨ b) ≡ a (as pass sets).
	absorb1 := MustUnion("a∨(a∧b)", a, meet)
	absorb2 := MustIntersect("a∧(a∨b)", a, join)
	for _, tc := range []Mechanism{absorb1, absorb2} {
		rel, err := Compare(tc, a, dom)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Relation != Equal {
			t.Errorf("%s vs a: %s, want equal (absorption)", tc.Name(), rel.Relation)
		}
	}
}

func TestParallelCheckMatchesSequential(t *testing.T) {
	q := ident2()
	dom := Grid(2, 0, 1, 2, 3, 4, 5)
	for _, pol := range []Policy{NewAllow(2, 2), NewAllow(2, 1), NewAllow(2), NewAllow(2, 1, 2)} {
		seq, err := CheckSoundness(q, pol, dom, ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 7} {
			par, err := CheckSoundnessParallel(q, pol, dom, ObserveValue, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Sound != seq.Sound {
				t.Errorf("policy %s workers %d: parallel sound=%v, sequential %v",
					pol.Name(), workers, par.Sound, seq.Sound)
			}
			if par.Checked != seq.Checked {
				t.Errorf("policy %s workers %d: checked %d vs %d",
					pol.Name(), workers, par.Checked, seq.Checked)
			}
			if !par.Sound {
				// The witness pair must be a genuine counterexample.
				if pol.View(par.WitnessA) != pol.View(par.WitnessB) {
					t.Errorf("witnesses not in the same class: %v %v", par.WitnessA, par.WitnessB)
				}
				if par.ObsA == par.ObsB {
					t.Errorf("witness observations equal: %q", par.ObsA)
				}
			}
		}
	}
}

func TestParallelCheckCrossShardConflict(t *testing.T) {
	// The policy ignores input 1 (the sharding position), so conflicting
	// observations live in different shards: Q(x1,x2) = x1 under allow(2).
	q := NewFunc("x1", 2, func(in []int64) Outcome {
		return Outcome{Value: in[0], Steps: 1}
	})
	pol := NewAllow(2, 2)
	dom := Grid(2, 0, 1, 2, 3)
	rep, err := CheckSoundnessParallel(q, pol, dom, ObserveValue, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Error("cross-shard conflict missed")
	}
}

func TestParallelCheckArityMismatch(t *testing.T) {
	if _, err := CheckSoundnessParallel(NewNull(2), NewAllow(1), Grid(2, 0), ObserveValue, 2); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestParallelCheckErrorPropagation(t *testing.T) {
	errMech := &errOnValue{v: 3}
	dom := Grid(1, 0, 1, 2, 3, 4, 5, 6, 7)
	if _, err := CheckSoundnessParallel(errMech, NewAllow(1, 1), dom, ObserveValue, 4); err == nil {
		t.Error("worker error not propagated")
	}
}

// errOnValue errors when it sees a particular input value.
type errOnValue struct{ v int64 }

func (e *errOnValue) Name() string { return "errOnValue" }
func (e *errOnValue) Arity() int   { return 1 }
func (e *errOnValue) Run(in []int64) (Outcome, error) {
	if in[0] == e.v {
		return Outcome{}, fmt.Errorf("synthetic failure at %d", e.v)
	}
	return Outcome{Value: 0, Steps: 1}, nil
}
