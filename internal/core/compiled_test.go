package core

import (
	"testing"

	"spm/internal/flowchart"
	"spm/internal/sweep"
)

const compiledTestProg = `
program ctp
inputs x1 x2
    r := x1 * 2
    if x2 == 0 goto A else B
A:  y := r
    halt
B:  y := x2 + 1
    halt
`

func TestCompiledMechanismMatchesInterpreter(t *testing.T) {
	p := flowchart.MustParse(compiledTestProg)
	pm := FromProgram(p)
	cm, err := CompileMechanism(pm)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Name() != pm.Name() || cm.Arity() != pm.Arity() {
		t.Fatalf("identity mismatch: %q/%d vs %q/%d", cm.Name(), cm.Arity(), pm.Name(), pm.Arity())
	}
	dom := Grid(2, -2, -1, 0, 1, 2, 3)
	if err := dom.Enumerate(func(input []int64) error {
		want, err := pm.Run(input)
		if err != nil {
			return err
		}
		got, err := cm.Run(input)
		if err != nil {
			return err
		}
		if got != want {
			t.Errorf("Run(%v) = %v, want %v", input, got, want)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCompiledMechanismSweepVerdict checks that the sweep checkers accept a
// pre-compiled mechanism through the RunnerProvider hook and produce the
// same verdict as the interpreted path.
func TestCompiledMechanismSweepVerdict(t *testing.T) {
	p := flowchart.MustParse(compiledTestProg)
	pm := FromProgram(p)
	cm, err := CompileMechanism(pm)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewAllow(2, 2)
	dom := Grid(2, 0, 1, 2)
	want, err := CheckSoundness(pm, pol, dom, ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CheckSoundnessSweep(cm, pol, dom, ObserveValue, sweep.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Sound != want.Sound || got.Checked != want.Checked {
		t.Errorf("compiled sweep verdict (sound=%v checked=%d) != interpreted (sound=%v checked=%d)",
			got.Sound, got.Checked, want.Sound, want.Checked)
	}
}

// TestRunnerFactoryPrefersProvider proves the factory routes through
// Runners() rather than recompiling: a provider with an instrumented
// counter sees one factory call per worker.
type countingProvider struct {
	*CompiledMechanism
	factories int
}

func (c *countingProvider) Runners() func() RunFunc {
	inner := c.CompiledMechanism.Runners()
	return func() RunFunc {
		c.factories++
		return inner()
	}
}

func TestRunnerFactoryPrefersProvider(t *testing.T) {
	p := flowchart.MustParse(compiledTestProg)
	cm, err := CompileMechanism(FromProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	cp := &countingProvider{CompiledMechanism: cm}
	factory := RunnerFactory(cp)
	for w := 0; w < 3; w++ {
		run := factory()
		if _, err := run([]int64{1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if cp.factories != 3 {
		t.Errorf("provider factory called %d times, want 3", cp.factories)
	}
}
