package core

import (
	"fmt"

	"spm/internal/flowchart"
)

// RunnerProvider lets a mechanism supply its own per-worker runner factory.
// RunnerFactory consults it before falling back to compile-on-demand, so a
// mechanism that already holds a compiled form (a compile-cache entry in
// internal/service) makes every sweep skip the parse/instrument/Compile
// phases and go straight to the compiled fast path.
type RunnerProvider interface {
	Mechanism
	// Runners returns a factory producing one RunFunc per sweep worker.
	// Each returned RunFunc owns its mutable state (register file) and
	// must not be shared between concurrent workers.
	Runners() func() RunFunc
}

// HintRunnerProvider lets a mechanism supply per-worker runners that
// understand the sweep engine's carry-depth hint (HintRunFunc). The
// engines consult it before HintRunnerProvider-unaware fallbacks, so a
// compile-cache entry serves the memoized fast paths directly: each
// worker keeps per-axis execution snapshots and replays only the program
// tail below the shallowest changed input.
type HintRunnerProvider interface {
	Mechanism
	// HintRunners returns a factory producing one HintRunFunc per sweep
	// worker. Each returned runner owns its mutable state (register file
	// and snapshots) and must not be shared between concurrent workers.
	// stack selects the snapshot-stack tier (per-axis captures, constant
	// suffixes, row cache); false falls back to the single-axis prefix
	// memo — the check.WithMemoStack(false) ablation. tally, when
	// non-nil, receives each worker's execution-tier counters (one
	// ExecTally.Part per runner); nil disables counting.
	HintRunners(stack bool, tally *ExecTally) func() HintRunFunc
}

// CompiledMechanism is a flowchart-backed Mechanism bound to its compiled
// form: Compile runs exactly once, at construction, and both Run and the
// sweep engine's per-worker runners execute the slot-indexed code. It is
// the unit the content-addressed compile cache stores.
type CompiledMechanism struct {
	pm   *Program
	code *flowchart.Compiled
}

// CompileMechanism lowers the flowchart behind pm once and binds the result.
func CompileMechanism(pm *Program) (*CompiledMechanism, error) {
	code, err := pm.P.Compile()
	if err != nil {
		return nil, fmt.Errorf("core: compiling %q: %w", pm.P.Name, err)
	}
	return &CompiledMechanism{pm: pm, code: code}, nil
}

// Source returns the wrapped program mechanism.
func (c *CompiledMechanism) Source() *Program { return c.pm }

// Name implements Mechanism.
func (c *CompiledMechanism) Name() string { return c.pm.Name() }

// Arity implements Mechanism.
func (c *CompiledMechanism) Arity() int { return c.pm.Arity() }

// Run implements Mechanism on the compiled form. It allocates a register
// file per call; enumeration loops should go through Runners instead.
func (c *CompiledMechanism) Run(input []int64) (Outcome, error) {
	res, err := c.code.Run(input, c.pm.MaxSteps)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Value: res.Value, Steps: res.Steps, Violation: res.Violation, Notice: res.Notice}, nil
}

// HintRunners implements HintRunnerProvider: each worker gets a private
// snapshot stack (or, without stack, a register file and single execution
// snapshot) over the shared compiled code, so sweeps in odometer order
// replay only the instructions after the first read of the shallowest
// changed input.
func (c *CompiledMechanism) HintRunners(stack bool, tally *ExecTally) func() HintRunFunc {
	if stack {
		return func() HintRunFunc { return stackRunner(c.code, c.pm.MaxSteps, tally.Part()) }
	}
	return func() HintRunFunc { return snapshotRunner(c.code, c.pm.MaxSteps, tally.Part()) }
}

// BatchRunners implements BatchRunnerProvider: each worker gets private
// structure-of-arrays lanes (plus a register file and snapshot for the
// scalar fallback) over the shared compiled code, so sweeps execute one
// instruction across width tuples at a time. Returns nil if the program's
// batch form cannot be built, sending the sweep down the scalar tiers.
func (c *CompiledMechanism) BatchRunners(width int, memo, stack bool, tally *ExecTally) func() BatchRunFunc {
	if _, err := c.code.NewLanes(width); err != nil {
		return nil
	}
	return func() BatchRunFunc { return batchRunner(c.code, c.pm.MaxSteps, width, memo, stack, tally.Part()) }
}

// Runners implements RunnerProvider: each worker gets a private register
// file over the shared compiled code.
func (c *CompiledMechanism) Runners() func() RunFunc {
	return func() RunFunc {
		regs := make([]int64, c.code.Slots())
		return func(input []int64) (Outcome, error) {
			res, err := c.code.RunReuse(regs, input, c.pm.MaxSteps)
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{Value: res.Value, Steps: res.Steps, Violation: res.Violation, Notice: res.Notice}, nil
		}
	}
}
