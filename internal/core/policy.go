package core

import (
	"fmt"
	"strconv"
	"strings"

	"spm/internal/lattice"
)

// Policy is a security policy I : D1 × ... × Dk → 𝔜, an information filter.
// View returns a canonical encoding of I(input); two inputs with equal
// views are indistinguishable under the policy, and a sound mechanism must
// behave identically on them. This is the extensional content of the
// paper's definition M = M′ ∘ I.
type Policy interface {
	// Name identifies the policy in reports, e.g. "allow(1,3)".
	Name() string
	// Arity returns k.
	Arity() int
	// View canonically encodes I(input).
	View(input []int64) string
}

// Allow is the paper's allow(i1,...,im) policy: the user may obtain
// information about exactly the inputs whose 1-based indices are in the
// set. allow() permits nothing; allow(1..k) permits everything.
type Allow struct {
	K       int
	Allowed lattice.IndexSet
}

// NewAllow builds allow(indices...) for a program of the given arity.
func NewAllow(arity int, indices ...int) *Allow {
	s := lattice.NewIndexSet(indices...)
	if !s.SubsetOf(lattice.AllInputs(arity)) {
		panic(fmt.Sprintf("core: allow%v exceeds arity %d", s, arity))
	}
	return &Allow{K: arity, Allowed: s}
}

// NewAllowSet builds allow(J) from an index set.
func NewAllowSet(arity int, allowed lattice.IndexSet) *Allow {
	if !allowed.SubsetOf(lattice.AllInputs(arity)) {
		panic(fmt.Sprintf("core: allow%v exceeds arity %d", allowed, arity))
	}
	return &Allow{K: arity, Allowed: allowed}
}

// Name implements Policy.
func (a *Allow) Name() string {
	idx := a.Allowed.Indices()
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "allow(" + strings.Join(parts, ",") + ")"
}

// Arity implements Policy.
func (a *Allow) Arity() int { return a.K }

// renderView canonically encodes the projection of input onto the indices
// in set. This is the hottest string in every sweep — one call per
// enumerated tuple — so it walks the index bitmask directly instead of
// materialising the index slice and formatting through fmt.
func renderView(set lattice.IndexSet, input []int64) string {
	buf := make([]byte, 0, 4*len(input))
	for i := 1; i <= len(input); i++ {
		if set.Contains(i) {
			buf = strconv.AppendInt(buf, input[i-1], 10)
			buf = append(buf, '|')
		}
	}
	return string(buf)
}

// View implements Policy: the projection (d_{i1}, ..., d_{im}).
func (a *Allow) View(input []int64) string {
	return renderView(a.Allowed, input)
}

// Content is a content-dependent policy defined by an arbitrary view
// function, such as the file-system policy of Example 2 where the i-th file
// is visible exactly when the i-th directory says "YES". The paper's
// definition of security policy admits any such function.
type Content struct {
	PolicyName string
	K          int
	ViewFn     func(input []int64) string
}

// NewContent builds a content-dependent policy.
func NewContent(name string, arity int, view func(input []int64) string) *Content {
	return &Content{PolicyName: name, K: arity, ViewFn: view}
}

// Name implements Policy.
func (c *Content) Name() string { return c.PolicyName }

// Arity implements Policy.
func (c *Content) Arity() int { return c.K }

// View implements Policy.
func (c *Content) View(input []int64) string { return c.ViewFn(input) }

// Integrity is the dual ("data security", Popek) reading of allow: inputs
// in Trusted are the only ones permitted to influence the output. Formally
// it is the same filter as Allow — the paper asserts the same methods
// handle the second security question — but it is named separately so
// reports read correctly.
type Integrity struct {
	K       int
	Trusted lattice.IndexSet
}

// NewIntegrity builds an integrity policy trusting the given indices.
func NewIntegrity(arity int, indices ...int) *Integrity {
	s := lattice.NewIndexSet(indices...)
	if !s.SubsetOf(lattice.AllInputs(arity)) {
		panic(fmt.Sprintf("core: integrity%v exceeds arity %d", s, arity))
	}
	return &Integrity{K: arity, Trusted: s}
}

// Name implements Policy.
func (p *Integrity) Name() string {
	idx := p.Trusted.Indices()
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "integrity(" + strings.Join(parts, ",") + ")"
}

// Arity implements Policy.
func (p *Integrity) Arity() int { return p.K }

// View implements Policy.
func (p *Integrity) View(input []int64) string {
	return renderView(p.Trusted, input)
}

// Observation selects what the user can see of an outcome — the formal
// knob for the observability postulate. CheckSoundness verifies that the
// chosen observation of M's output is constant on every policy class.
type Observation struct {
	// ObsName identifies the observation in reports.
	ObsName string
	// Render canonically encodes the observable part of an outcome.
	Render func(Outcome) string
}

// ObserveValue sees the output value (or the violation notice) but not the
// running time: the paper's first flowchart case, range Z. Render is on
// every sweep's per-tuple path, hence strconv rather than fmt.
var ObserveValue = Observation{
	ObsName: "value",
	Render: func(o Outcome) string {
		if o.Violation {
			return "Λ[" + o.Notice + "]"
		}
		return "v=" + strconv.FormatInt(o.Value, 10)
	},
}

// ObserveValueAndTime sees the pair (value, steps): the paper's second
// flowchart case, range Z × Z, where running time is observable.
var ObserveValueAndTime = Observation{
	ObsName: "value+time",
	Render: func(o Outcome) string {
		if o.Violation {
			return "Λ[" + o.Notice + "]@" + strconv.FormatInt(o.Steps, 10)
		}
		return "v=" + strconv.FormatInt(o.Value, 10) + "@" + strconv.FormatInt(o.Steps, 10)
	},
}

// CoarseNotices wraps an observation so all violation notices look
// identical (and, for ObserveValue, timeless). Use it to model users who
// cannot distinguish notice texts; with the strict observations above,
// notice texts count as output and mechanisms that leak through them —
// Denning's and Rotenberg's examples (the paper's Example 4) — are caught
// as unsound.
func CoarseNotices(obs Observation) Observation {
	return Observation{
		ObsName: obs.ObsName + "/coarse-Λ",
		Render: func(o Outcome) string {
			if o.Violation {
				if obs.ObsName == ObserveValueAndTime.ObsName {
					return fmt.Sprintf("Λ@%d", o.Steps)
				}
				return "Λ"
			}
			return obs.Render(o)
		},
	}
}
