package core

import (
	"context"
	"sort"

	"spm/internal/sweep"
)

// ClassSummary is one policy class's maximality evidence over a shard of
// the index space. The Theorem 2 maximal mechanism passes exactly on the
// classes where Q's observation is constant — a whole-domain property no
// shard can decide alone — so a sharded maximality run records, per class,
// what Q looked like and where m passed, altered, or withheld, and
// check.Merge folds the tables into the global verdict.
//
// The witness fields capture each way m can deviate, with the first input
// (in the shard's enumeration order) exhibiting it:
//
//   - PassWitness: m returned real output. Fatal on a globally varying
//     class (ReasonLeaks).
//   - AlterWitness: m returned real output that disagreed with Q at the
//     same input (different rendering, or Q violated there). Fatal on a
//     globally constant class (ReasonAlters).
//   - WithholdWitness: m issued Λ where Q passed. Fatal on a globally
//     constant non-violating class (ReasonWithholds).
type ClassSummary struct {
	// QObs is Q's first-seen rendered observation in the shard's slice of
	// the class; QConstant reports whether it stayed constant within the
	// shard; QViolates whether Q issued a violation notice at that first
	// input. Merging requires observations that render violations
	// distinguishably, which every Observation in this library does.
	QObs      string `json:"q_obs"`
	QConstant bool   `json:"q_constant"`
	QViolates bool   `json:"q_violates,omitempty"`

	PassWitness     []int64 `json:"pass_witness,omitempty"`
	AlterWitness    []int64 `json:"alter_witness,omitempty"`
	WithholdWitness []int64 `json:"withhold_witness,omitempty"`
}

// MergeClassSummaries folds b into a (both describing the same class), with
// a's shard ordered before b's: Q is constant only if both halves are
// constant and agree, and each witness keeps the earliest occurrence. It is
// both the in-process per-worker fold of CheckMaximalityShard and the
// cross-node fold of check.Merge.
func MergeClassSummaries(a, b ClassSummary) ClassSummary {
	if !b.QConstant || a.QObs != b.QObs {
		a.QConstant = false
	}
	if a.PassWitness == nil {
		a.PassWitness = b.PassWitness
	}
	if a.AlterWitness == nil {
		a.AlterWitness = b.AlterWitness
	}
	if a.WithholdWitness == nil {
		a.WithholdWitness = b.WithholdWitness
	}
	return a
}

// CheckMaximalityShard is the sharded counterpart of
// CheckMaximalityContext: a single enumeration pass over cc's shard range
// that runs both Q and m per tuple and tabulates per-class evidence
// (Classes) instead of deciding the verdict — maximality needs the global
// class table, which only check.Merge over every shard's report has.
//
// One deviation is decidable locally and short-circuits the cluster's
// remaining shards when it appears: m passing on a class whose Q
// observation already varies within this shard leaks regardless of what
// other shards hold, so the report comes back Maximal=false with
// ReasonLeaks. Every other deviation is left to the merge. Checked counts
// the shard's tuples once, so sharded Checked totals sum to the domain
// size — the same accounting as the unsharded verdict pass.
func CheckMaximalityShard(ctx context.Context, m, q Mechanism, pol Policy, dom Domain, obs Observation, cc CheckConfig) (MaximalityReport, error) {
	rep, err := maximalityPreflight(m, q, pol, dom, obs)
	if err != nil {
		return rep, err
	}
	workers := cc.ResolvedWorkers(sweep.Size(dom))

	type shard struct {
		classes map[string]*ClassSummary
		checked int
	}
	shards := make([]shard, workers)
	for w := range shards {
		shards[w] = shard{classes: make(map[string]*ClassSummary)}
	}
	if err := sweepOutcomes(ctx, dom, cc, []Mechanism{q, m}, func(w int, input []int64, outs []Outcome) error {
		s := &shards[w]
		qo, mo := outs[0], outs[1]
		s.checked++
		view := pol.View(input)
		rq := obs.Render(qo)
		cs := s.classes[view]
		if cs == nil {
			cs = &ClassSummary{QObs: rq, QConstant: true, QViolates: qo.Violation}
			s.classes[view] = cs
		} else if cs.QObs != rq {
			cs.QConstant = false
		}
		if !mo.Violation {
			if cs.PassWitness == nil {
				cs.PassWitness = append([]int64(nil), input...)
			}
			if cs.AlterWitness == nil && (qo.Violation || obs.Render(mo) != rq) {
				cs.AlterWitness = append([]int64(nil), input...)
			}
		} else if cs.WithholdWitness == nil && !qo.Violation {
			cs.WithholdWitness = append([]int64(nil), input...)
		}
		return nil
	}); err != nil {
		return rep, err
	}

	merged := make(map[string]ClassSummary)
	for w := range shards {
		s := &shards[w]
		rep.Checked += s.checked
		for view, cs := range s.classes {
			if prev, ok := merged[view]; ok {
				merged[view] = MergeClassSummaries(prev, *cs)
			} else {
				merged[view] = *cs
			}
		}
	}
	rep.Classes = merged
	views := make([]string, 0, len(merged))
	for view := range merged {
		views = append(views, view)
	}
	sort.Strings(views) // deterministic witness choice among leaking classes
	for _, view := range views {
		cs := merged[view]
		if !cs.QConstant && cs.PassWitness != nil {
			rep.Maximal = false
			rep.Witness = cs.PassWitness
			rep.Reason = ReasonLeaks
			break
		}
	}
	return rep, nil
}
