package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Domain is a finite test domain: one candidate value list per input
// position. Soundness, mechanism-property, and completeness checks
// enumerate its cartesian product.
type Domain [][]int64

// Grid builds a domain where every one of arity positions ranges over the
// same values.
func Grid(arity int, values ...int64) Domain {
	d := make(Domain, arity)
	for i := range d {
		d[i] = values
	}
	return d
}

// Range builds the value list lo..hi inclusive, a convenience for Grid.
func Range(lo, hi int64) []int64 {
	if hi < lo {
		return nil
	}
	out := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

// Size returns the number of points in the domain.
func (d Domain) Size() int {
	n := 1
	for _, vs := range d {
		n *= len(vs)
	}
	return n
}

// Enumerate calls f on every point of the cartesian product, reusing a
// single buffer; f must not retain the slice. Enumeration stops at the
// first error.
func (d Domain) Enumerate(f func(input []int64) error) error {
	if len(d) == 0 {
		return f(nil)
	}
	for _, vs := range d {
		if len(vs) == 0 {
			return nil // empty product
		}
	}
	idx := make([]int, len(d))
	buf := make([]int64, len(d))
	for {
		for i := range d {
			buf[i] = d[i][idx[i]]
		}
		if err := f(buf); err != nil {
			return err
		}
		j := len(d) - 1
		for j >= 0 {
			idx[j]++
			if idx[j] < len(d[j]) {
				break
			}
			idx[j] = 0
			j--
		}
		if j < 0 {
			return nil
		}
	}
}

// SoundnessReport is the result of CheckSoundness.
type SoundnessReport struct {
	Mechanism   string
	Policy      string
	Observation string
	Sound       bool
	Checked     int
	// On failure, two inputs with the same policy view but different
	// observable outcomes — a counterexample to M = M′ ∘ I.
	WitnessA, WitnessB []int64
	ObsA, ObsB         string
	// Views is the per-class observation table, populated only when
	// CheckConfig.CollectViews asked for it: one entry per policy view
	// seen, carrying the first observation and a witness input. A verdict
	// over a shard of the index space is exact only together with this
	// table — two shards each internally sound can still conflict on a
	// class that spans them, which is what check.Merge detects.
	Views map[string]ViewObs
}

// ViewObs is one policy class's first-seen observation and a witness input
// that produced it: the unit of the cross-shard soundness merge. It is the
// exported form of the per-worker view tables the parallel checker already
// merges in-process.
type ViewObs struct {
	Obs     string  `json:"obs"`
	Witness []int64 `json:"witness"`
}

// String summarises the report.
func (r SoundnessReport) String() string {
	if r.Sound {
		return fmt.Sprintf("%s is SOUND for %s under %s (%d inputs checked)",
			r.Mechanism, r.Policy, r.Observation, r.Checked)
	}
	return fmt.Sprintf("%s is UNSOUND for %s under %s: inputs %v and %v share a policy view but observe as %q vs %q",
		r.Mechanism, r.Policy, r.Observation, r.WitnessA, r.WitnessB, r.ObsA, r.ObsB)
}

// CheckSoundness decides, by exhaustive enumeration of dom, whether m is
// sound for pol under obs: whether the observable outcome factors through
// the policy view. This is the paper's soundness definition restricted to
// a finite domain (over all of Z^k the question is undecidable — Ruzzo's
// observation after Theorem 4).
func CheckSoundness(m Mechanism, pol Policy, dom Domain, obs Observation) (SoundnessReport, error) {
	rep := SoundnessReport{Mechanism: m.Name(), Policy: pol.Name(), Observation: obs.ObsName, Sound: true}
	if m.Arity() != pol.Arity() || len(dom) != m.Arity() {
		return rep, fmt.Errorf("core: arity mismatch: mechanism %d, policy %d, domain %d",
			m.Arity(), pol.Arity(), len(dom))
	}
	type seenEntry struct {
		obs   string
		input []int64
	}
	seen := make(map[string]seenEntry)
	err := dom.Enumerate(func(input []int64) error {
		o, err := m.Run(input)
		if err != nil {
			return err
		}
		rep.Checked++
		view := pol.View(input)
		rendered := obs.Render(o)
		if prev, ok := seen[view]; ok {
			if prev.obs != rendered && rep.Sound {
				rep.Sound = false
				rep.WitnessA = prev.input
				rep.WitnessB = append([]int64(nil), input...)
				rep.ObsA = prev.obs
				rep.ObsB = rendered
			}
			return nil
		}
		seen[view] = seenEntry{obs: rendered, input: append([]int64(nil), input...)}
		return nil
	})
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// VerifyMechanism checks the defining property of a protection mechanism
// for q over dom: for every input, m(d) = q(d) or m(d) is a violation
// notice. It returns the first offending input, if any.
func VerifyMechanism(m, q Mechanism, dom Domain) (ok bool, witness []int64, err error) {
	if m.Arity() != q.Arity() || len(dom) != q.Arity() {
		return false, nil, fmt.Errorf("core: arity mismatch: mechanism %d, program %d, domain %d",
			m.Arity(), q.Arity(), len(dom))
	}
	ok = true
	err = dom.Enumerate(func(input []int64) error {
		mo, err := m.Run(input)
		if err != nil {
			return err
		}
		if mo.Violation {
			return nil
		}
		qo, err := q.Run(input)
		if err != nil {
			return err
		}
		if qo.Violation {
			return fmt.Errorf("core: %q is not a bare program: it issued a violation notice on %v", q.Name(), input)
		}
		if mo.Value != qo.Value && ok {
			ok = false
			witness = append([]int64(nil), input...)
		}
		return nil
	})
	return ok, witness, err
}

// Relation is the outcome of a completeness comparison.
type Relation int

// Completeness relations between two mechanisms for the same program.
const (
	Incomparable Relation = iota // neither dominates
	Equal                        // pass on exactly the same inputs
	MoreComplete                 // first strictly dominates (M1 > M2)
	LessComplete                 // second strictly dominates (M1 < M2)
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case Incomparable:
		return "incomparable"
	case Equal:
		return "equal"
	case MoreComplete:
		return "more complete"
	case LessComplete:
		return "less complete"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// CompletenessReport is the result of Compare.
type CompletenessReport struct {
	M1, M2   string
	Relation Relation
	// PassM1/PassM2 count inputs on which each mechanism returned real
	// output (no violation notice); utility in the paper's sense.
	PassM1, PassM2 int
	Checked        int
	// OnlyM1 is an input where M1 passed but M2 did not, and vice versa.
	OnlyM1, OnlyM2 []int64
}

// String summarises the comparison.
func (r CompletenessReport) String() string {
	return fmt.Sprintf("%s %s %s (pass %d vs %d of %d)",
		r.M1, relationSymbol(r.Relation), r.M2, r.PassM1, r.PassM2, r.Checked)
}

func relationSymbol(r Relation) string {
	switch r {
	case Equal:
		return "="
	case MoreComplete:
		return ">"
	case LessComplete:
		return "<"
	default:
		return "<>"
	}
}

// Compare computes the completeness relation between m1 and m2 over dom,
// per the paper's definition: M1 ≥ M2 iff whenever M2 passes (returns real
// output) so does M1. Violation notices are not distinguished from one
// another.
func Compare(m1, m2 Mechanism, dom Domain) (CompletenessReport, error) {
	rep := CompletenessReport{M1: m1.Name(), M2: m2.Name()}
	if m1.Arity() != m2.Arity() || len(dom) != m1.Arity() {
		return rep, fmt.Errorf("core: arity mismatch: %d vs %d vs domain %d", m1.Arity(), m2.Arity(), len(dom))
	}
	ge, le := true, true
	err := dom.Enumerate(func(input []int64) error {
		o1, err := m1.Run(input)
		if err != nil {
			return err
		}
		o2, err := m2.Run(input)
		if err != nil {
			return err
		}
		rep.Checked++
		p1, p2 := !o1.Violation, !o2.Violation
		if p1 {
			rep.PassM1++
		}
		if p2 {
			rep.PassM2++
		}
		if p1 && !p2 && rep.OnlyM1 == nil {
			rep.OnlyM1 = append([]int64(nil), input...)
		}
		if p2 && !p1 && rep.OnlyM2 == nil {
			rep.OnlyM2 = append([]int64(nil), input...)
		}
		if p2 && !p1 {
			ge = false
		}
		if p1 && !p2 {
			le = false
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	switch {
	case ge && le:
		rep.Relation = Equal
	case ge && rep.OnlyM1 != nil:
		rep.Relation = MoreComplete
	case le && rep.OnlyM2 != nil:
		rep.Relation = LessComplete
	case ge:
		rep.Relation = Equal // dominates but never strictly: identical pass sets
	default:
		rep.Relation = Incomparable
	}
	return rep, nil
}

// LeakReport quantifies how much disallowed information a mechanism's
// observable output carries, in the spirit of Example 5 ("the amount of
// information obtained by the user is small").
type LeakReport struct {
	Mechanism   string
	Policy      string
	Observation string
	// Classes is the number of policy equivalence classes in the domain.
	Classes int
	// MaxOutcomes is the largest number of distinct observations within a
	// single class; 1 means sound.
	MaxOutcomes int
	// Bits is log2(MaxOutcomes): the worst-case information (in bits)
	// about disallowed inputs revealed by one query.
	Bits float64
	// WorstView identifies the class achieving MaxOutcomes.
	WorstView string
}

// String summarises the leak report.
func (r LeakReport) String() string {
	return fmt.Sprintf("%s under %s/%s: %d classes, worst class has %d outcomes = %.3f bits/query",
		r.Mechanism, r.Policy, r.Observation, r.Classes, r.MaxOutcomes, r.Bits)
}

// MeasureLeak computes the leak report for m against pol over dom.
func MeasureLeak(m Mechanism, pol Policy, dom Domain, obs Observation) (LeakReport, error) {
	rep := LeakReport{Mechanism: m.Name(), Policy: pol.Name(), Observation: obs.ObsName}
	if m.Arity() != pol.Arity() || len(dom) != m.Arity() {
		return rep, fmt.Errorf("core: arity mismatch")
	}
	classes := make(map[string]map[string]bool)
	err := dom.Enumerate(func(input []int64) error {
		o, err := m.Run(input)
		if err != nil {
			return err
		}
		view := pol.View(input)
		set := classes[view]
		if set == nil {
			set = make(map[string]bool)
			classes[view] = set
		}
		set[obs.Render(o)] = true
		return nil
	})
	if err != nil {
		return rep, err
	}
	rep.Classes = len(classes)
	views := make([]string, 0, len(classes))
	for v := range classes {
		views = append(views, v)
	}
	sort.Strings(views) // deterministic worst-view selection
	for _, v := range views {
		if n := len(classes[v]); n > rep.MaxOutcomes {
			rep.MaxOutcomes = n
			rep.WorstView = v
		}
	}
	if rep.MaxOutcomes > 0 {
		rep.Bits = math.Log2(float64(rep.MaxOutcomes))
	}
	return rep, nil
}

// FormatInputs renders an input vector for reports.
func FormatInputs(input []int64) string {
	parts := make([]string, len(input))
	for i, v := range input {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}
