package core

import (
	"math/rand"
	"testing"

	"spm/internal/flowchart"
	"spm/internal/sweep"
)

// tableMech builds a deterministic random mechanism over a domain: each
// input maps to a fixed outcome, violating with probability pViolate.
func tableMech(r *rand.Rand, name string, dom Domain, values int64, pViolate float64) Mechanism {
	table := make(map[string]Outcome)
	_ = dom.Enumerate(func(in []int64) error {
		o := Outcome{Value: r.Int63n(values), Steps: 1 + r.Int63n(3)}
		if r.Float64() < pViolate {
			o = Outcome{Violation: true, Notice: "gate", Steps: 1}
		}
		table[FormatInputs(in)] = o
		return nil
	})
	return NewFunc(name, len(dom), func(in []int64) Outcome {
		return table[FormatInputs(in)]
	})
}

// randomDomain builds a domain of up to maxArity positions with distinct
// small values per position.
func randomDomain(r *rand.Rand, maxArity int) Domain {
	k := 1 + r.Intn(maxArity)
	dom := make(Domain, k)
	for i := range dom {
		n := 2 + r.Intn(4)
		vs := make([]int64, n)
		for j := range vs {
			vs[j] = int64(j)
		}
		dom[i] = vs
	}
	return dom
}

// TestSweepSoundnessMatchesSequentialRandomized is the verdict-equivalence
// property test of the engine against the sequential checker: random
// domains, random mechanisms, random policies, random engine settings.
func TestSweepSoundnessMatchesSequentialRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(48))
	for trial := 0; trial < 60; trial++ {
		dom := randomDomain(r, 3)
		k := len(dom)
		var idx []int
		for i := 1; i <= k; i++ {
			if r.Intn(2) == 0 {
				idx = append(idx, i)
			}
		}
		pol := NewAllow(k, idx...)
		m := tableMech(r, "rand", dom, 2+r.Int63n(3), 0.2)
		obs := ObserveValue
		if r.Intn(2) == 0 {
			obs = ObserveValueAndTime
		}
		seq, err := CheckSoundness(m, pol, dom, obs)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sweep.Config{Workers: 1 + r.Intn(6), Chunk: 1 + r.Intn(8)}
		par, err := CheckSoundnessSweep(m, pol, dom, obs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par.Sound != seq.Sound || par.Checked != seq.Checked {
			t.Fatalf("trial %d cfg %+v: engine (sound=%v checked=%d) vs sequential (sound=%v checked=%d)",
				trial, cfg, par.Sound, par.Checked, seq.Sound, seq.Checked)
		}
		if !par.Sound {
			if pol.View(par.WitnessA) != pol.View(par.WitnessB) {
				t.Fatalf("trial %d: witnesses %v, %v not in one class", trial, par.WitnessA, par.WitnessB)
			}
			if par.ObsA == par.ObsB {
				t.Fatalf("trial %d: witness observations both %q", trial, par.ObsA)
			}
		}
	}
}

// TestSweepMaximalityMatchesSequentialRandomized property-tests the
// parallel maximality checker against the sequential one.
func TestSweepMaximalityMatchesSequentialRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(49))
	for trial := 0; trial < 60; trial++ {
		dom := randomDomain(r, 3)
		k := len(dom)
		pol := NewAllow(k, 1+r.Intn(k))
		q := tableMech(r, "q", dom, 2, 0)
		var m Mechanism
		switch trial % 3 {
		case 0: // the genuine maximal mechanism — must check as maximal
			mm, err := Maximal(q, pol, dom, ObserveValue)
			if err != nil {
				t.Fatal(err)
			}
			m = mm
		case 1: // a random gate — usually not maximal
			m = tableMech(r, "m", dom, 2, 0.3)
		default: // the bare program — maximal exactly when sound
			m = q
		}
		seq, err := CheckMaximality(m, q, pol, dom, ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sweep.Config{Workers: 1 + r.Intn(6), Chunk: 1 + r.Intn(8)}
		par, err := CheckMaximalitySweep(m, q, pol, dom, ObserveValue, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par.Maximal != seq.Maximal || par.Checked != seq.Checked {
			t.Fatalf("trial %d cfg %+v: engine (maximal=%v checked=%d) vs sequential (maximal=%v checked=%d)",
				trial, cfg, par.Maximal, par.Checked, seq.Maximal, seq.Checked)
		}
		if trial%3 == 0 && !par.Maximal {
			t.Fatalf("trial %d: Theorem 2 tabulation rejected as non-maximal: %s", trial, par)
		}
	}
}

// TestCheckMaximalityVerdicts pins the three failure reasons.
func TestCheckMaximalityVerdicts(t *testing.T) {
	q := ident2() // Q(x1,x2) = x2
	pol := NewAllow(2, 2)
	dom := smallDom()

	// Q is sound for allow(2), so Q itself is maximal.
	rep, err := CheckMaximalityParallel(q, q, pol, dom, ObserveValue, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Maximal {
		t.Errorf("sound Q not maximal: %s", rep)
	}

	// Null withholds everywhere although every class is Q-constant.
	rep, err = CheckMaximalityParallel(NewNull(2), q, pol, dom, ObserveValue, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Maximal || rep.Reason != ReasonWithholds {
		t.Errorf("null verdict = %s", rep)
	}

	// Leaky: Q(x1,x2) = x1 under allow(2) passes on varying classes.
	leaky := NewFunc("x1", 2, func(in []int64) Outcome {
		return Outcome{Value: in[0], Steps: 1}
	})
	rep, err = CheckMaximalityParallel(leaky, leaky, pol, dom, ObserveValue, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Maximal || rep.Reason != ReasonLeaks {
		t.Errorf("leaky verdict = %s", rep)
	}

	// Altering: passes everywhere but with the wrong value.
	wrong := NewFunc("x2+1", 2, func(in []int64) Outcome {
		return Outcome{Value: in[1] + 1, Steps: 1}
	})
	rep, err = CheckMaximalityParallel(wrong, q, pol, dom, ObserveValue, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Maximal || rep.Reason != ReasonAlters {
		t.Errorf("altering verdict = %s", rep)
	}
}

// TestMaximalityCrossShardMerge forces the class-constancy evidence to span
// chunks: with chunk size 1 every tuple lands in its own scheduling unit,
// so a class's varying observations are only visible after the worker
// tables merge. Q(x1,x2) = x1 varies within every allow(2) class.
func TestMaximalityCrossShardMerge(t *testing.T) {
	q := NewFunc("x1", 2, func(in []int64) Outcome {
		return Outcome{Value: in[0], Steps: 1}
	})
	pol := NewAllow(2, 2)
	dom := Grid(2, 0, 1, 2, 3)
	// Q passes everywhere; since its classes vary, it must not be maximal,
	// and the only way to see that is the cross-worker merge.
	rep, err := CheckMaximalitySweep(q, q, pol, dom, ObserveValue, sweep.Config{Workers: 4, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Maximal || rep.Reason != ReasonLeaks {
		t.Errorf("cross-shard class variation missed: %s", rep)
	}
	// And the null mechanism — which violates everywhere — IS maximal
	// here, which again only the merged table can certify.
	rep, err = CheckMaximalitySweep(NewNull(2), q, pol, dom, ObserveValue, sweep.Config{Workers: 4, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Maximal {
		t.Errorf("null should be maximal for an everywhere-varying Q: %s", rep)
	}
}

// TestSoundnessCrossShardMergeChunked is the conflict-merge test at chunk
// granularity: conflicting views never co-reside in a worker's chunk.
func TestSoundnessCrossShardMergeChunked(t *testing.T) {
	q := NewFunc("x1", 2, func(in []int64) Outcome {
		return Outcome{Value: in[0], Steps: 1}
	})
	pol := NewAllow(2, 2) // input 1 disallowed: views span shards
	dom := Grid(2, 0, 1, 2, 3)
	for _, chunk := range []int{1, 2, 3} {
		rep, err := CheckSoundnessSweep(q, pol, dom, ObserveValue, sweep.Config{Workers: 4, Chunk: chunk})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sound {
			t.Errorf("chunk %d: cross-shard conflict missed", chunk)
		}
		if pol.View(rep.WitnessA) != pol.View(rep.WitnessB) || rep.ObsA == rep.ObsB {
			t.Errorf("chunk %d: bogus witness pair %v/%v (%q vs %q)",
				chunk, rep.WitnessA, rep.WitnessB, rep.ObsA, rep.ObsB)
		}
	}
}

// TestCompiledFastPathMatchesInterpreter checks the engine's compiled fast
// path end to end: a flowchart-backed mechanism swept in parallel must
// produce the sequential interpreter's verdicts.
func TestCompiledFastPathMatchesInterpreter(t *testing.T) {
	q := flowchart.MustParse(`
program fast
inputs x1 x2
    i := x1 & 3
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      goto Loop
Done: y := x2
      halt
`)
	m := FromProgram(q)
	dom := Grid(2, Range(0, 7)...)
	for _, tc := range []struct {
		pol Policy
		obs Observation
	}{
		{NewAllow(2, 2), ObserveValue},           // sound: y = x2
		{NewAllow(2, 2), ObserveValueAndTime},    // unsound: steps leak x1
		{NewAllow(2, 1, 2), ObserveValueAndTime}, // sound: everything allowed
	} {
		seq, err := CheckSoundness(m, tc.pol, dom, tc.obs)
		if err != nil {
			t.Fatal(err)
		}
		par, err := CheckSoundnessSweep(m, tc.pol, dom, tc.obs, sweep.Config{Workers: 4, Chunk: 5})
		if err != nil {
			t.Fatal(err)
		}
		if par.Sound != seq.Sound || par.Checked != seq.Checked {
			t.Errorf("%s/%s: engine (sound=%v) vs interpreter (sound=%v)",
				tc.pol.Name(), tc.obs.ObsName, par.Sound, seq.Sound)
		}
	}
	// Pass counting through the fast path.
	passes, err := PassCountParallel(m, dom, 4)
	if err != nil {
		t.Fatal(err)
	}
	if passes != dom.Size() {
		t.Errorf("fast-path pass count = %d, want %d", passes, dom.Size())
	}
}

// TestPassCountParallel checks the counter against a hand count and the
// arity guard.
func TestPassCountParallel(t *testing.T) {
	even := passOn("even", func(v int64) bool { return v%2 == 0 })
	dom := Grid(2, 0, 1, 2, 3)
	got, err := PassCountParallel(even, dom, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 { // x2 ∈ {0,2} passes, 4 values of x1 each
		t.Errorf("pass count = %d, want 8", got)
	}
	if _, err := PassCountParallel(even, Grid(1, 0), 2); err == nil {
		t.Error("arity mismatch accepted")
	}
}

// TestMaximalityErrorPropagation: a failing mechanism run surfaces as an
// error, not a verdict, from both passes.
func TestMaximalityErrorPropagation(t *testing.T) {
	bad := &errOnValue{v: 5}
	dom := Grid(1, Range(0, 7)...)
	if _, err := CheckMaximalityParallel(bad, bad, NewAllow(1, 1), dom, ObserveValue, 4); err == nil {
		t.Error("worker error not propagated")
	}
	if _, err := CheckMaximalityParallel(NewNull(2), NewNull(1), NewAllow(1, 1), dom, ObserveValue, 2); err == nil {
		t.Error("arity mismatch accepted")
	}
}
