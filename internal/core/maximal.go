package core

import (
	"fmt"
)

// MaximalMech is the maximal sound protection mechanism of Theorem 2,
// constructed by tabulation over a finite domain: it releases Q(d) exactly
// when Q's observable output is constant on d's policy class, and issues Λ
// otherwise. Over a finite domain this construction is effective; Theorem 4
// is the statement that no such effective construction exists over all of
// Z^k — which is why Run rejects inputs outside the tabulated domain
// instead of guessing.
type MaximalMech struct {
	MechName string
	K        int
	table    map[string]Outcome // input key -> outcome (violation = Λ)
}

// NoticeMaximal is the violation notice issued by the maximal mechanism.
const NoticeMaximal = "maximal: output varies within the policy class"

// Maximal tabulates the maximal sound protection mechanism for q and pol
// over dom under obs. The resulting mechanism is sound by construction
// and, by Theorem 2, at least as complete as every sound mechanism for
// (q, pol) over the domain.
//
// All violation notices are considered equivalent (as in the paper's
// completeness ordering), so within a class whose Q-observations agree the
// mechanism returns Q's outcome, and otherwise the single notice
// NoticeMaximal.
func Maximal(q Mechanism, pol Policy, dom Domain, obs Observation) (*MaximalMech, error) {
	if q.Arity() != pol.Arity() || len(dom) != q.Arity() {
		return nil, fmt.Errorf("core: arity mismatch: mechanism %d, policy %d, domain %d",
			q.Arity(), pol.Arity(), len(dom))
	}
	type classInfo struct {
		obs      string
		constant bool
	}
	classes := make(map[string]*classInfo)
	// Pass 1: determine which classes are Q-constant under obs.
	if err := dom.Enumerate(func(in []int64) error {
		o, err := q.Run(in)
		if err != nil {
			return err
		}
		view := pol.View(in)
		rendered := obs.Render(o)
		if ci, ok := classes[view]; ok {
			if ci.obs != rendered {
				ci.constant = false
			}
			return nil
		}
		classes[view] = &classInfo{obs: rendered, constant: true}
		return nil
	}); err != nil {
		return nil, err
	}
	// Pass 2: tabulate outcomes.
	m := &MaximalMech{
		MechName: "maximal(" + q.Name() + "," + pol.Name() + ")",
		K:        q.Arity(),
		table:    make(map[string]Outcome, dom.Size()),
	}
	if err := dom.Enumerate(func(in []int64) error {
		key := FormatInputs(in)
		if classes[pol.View(in)].constant {
			o, err := q.Run(in)
			if err != nil {
				return err
			}
			m.table[key] = o
		} else {
			m.table[key] = Outcome{Violation: true, Notice: NoticeMaximal, Steps: 1}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements Mechanism.
func (m *MaximalMech) Name() string { return m.MechName }

// Arity implements Mechanism.
func (m *MaximalMech) Arity() int { return m.K }

// Run implements Mechanism. Inputs outside the tabulated domain are an
// error: the construction is only defined there (Theorem 4 forbids the
// general case).
func (m *MaximalMech) Run(input []int64) (Outcome, error) {
	if len(input) != m.K {
		return Outcome{}, fmt.Errorf("core: %q: got %d inputs, want %d", m.MechName, len(input), m.K)
	}
	o, ok := m.table[FormatInputs(input)]
	if !ok {
		return Outcome{}, fmt.Errorf("core: %q: input %s outside the tabulated domain", m.MechName, FormatInputs(input))
	}
	return o, nil
}

// PassCount returns how many tabulated inputs the mechanism passes, for
// completeness reports.
func (m *MaximalMech) PassCount() (pass, total int) {
	for _, o := range m.table {
		if !o.Violation {
			pass++
		}
	}
	return pass, len(m.table)
}
